//! IOC protection (Algorithm 1, stage 2).
//!
//! "We protect the security context by replacing the IOCs with a dummy
//! word (i.e., word 'something'). This makes the NLP modules designed for
//! processing general text work well for OSCTI text." (§II-C)
//!
//! Protection happens per block; the restoration table maps each dummy's
//! byte offset (in protected coordinates) back to the original [`Ioc`], so
//! [`crate::depparse`] output can be un-protected exactly (stage 3's
//! "replace the dummy word with the original IOCs in the trees").

use crate::ioc::{Ioc, IocRecognizer};
use std::collections::HashMap;

/// The dummy word substituted for every IOC.
pub const DUMMY: &str = "something";

/// A block with IOCs replaced by [`DUMMY`].
#[derive(Debug, Clone)]
pub struct ProtectedBlock {
    /// Protected text (what segmentation/parsing consume).
    pub text: String,
    /// Restoration table: dummy start offset (protected coordinates) →
    /// original IOC (offsets in block coordinates).
    pub slots: HashMap<usize, Ioc>,
}

impl ProtectedBlock {
    /// Number of protected IOCs.
    pub fn ioc_count(&self) -> usize {
        self.slots.len()
    }

    /// IOCs in order of appearance.
    pub fn iocs_in_order(&self) -> Vec<&Ioc> {
        let mut entries: Vec<(&usize, &Ioc)> = self.slots.iter().collect();
        entries.sort_by_key(|(off, _)| **off);
        entries.into_iter().map(|(_, ioc)| ioc).collect()
    }
}

/// Protects a block: recognizes IOCs and substitutes the dummy word.
pub fn protect(block: &str) -> ProtectedBlock {
    let iocs = IocRecognizer::global().recognize(block);
    let mut text = String::with_capacity(block.len());
    let mut slots = HashMap::with_capacity(iocs.len());
    let mut cursor = 0usize;
    for ioc in iocs {
        text.push_str(&block[cursor..ioc.start]);
        slots.insert(text.len(), ioc.clone());
        text.push_str(DUMMY);
        cursor = ioc.end;
    }
    text.push_str(&block[cursor..]);
    ProtectedBlock { text, slots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ioc::IocType;

    #[test]
    fn protects_and_records_slots() {
        let block = "the attacker used /bin/tar to read /etc/passwd quickly";
        let p = protect(block);
        assert_eq!(
            p.text,
            "the attacker used something to read something quickly"
        );
        assert_eq!(p.ioc_count(), 2);
        let in_order = p.iocs_in_order();
        assert_eq!(in_order[0].text, "/bin/tar");
        assert_eq!(in_order[1].text, "/etc/passwd");
        // Slot offsets point at the dummies.
        for (off, ioc) in &p.slots {
            assert_eq!(&p.text[*off..*off + DUMMY.len()], DUMMY);
            assert_eq!(ioc.ty, IocType::FilePath);
        }
    }

    #[test]
    fn sentence_segmentation_survives_protection() {
        let block = "It read /etc/passwd. Then it wrote /tmp/upload.tar.bz2. Done.";
        let p = protect(block);
        // No IOC dots remain, so splitting is trivial and correct.
        let sents = crate::text::segment_sentences(&p.text);
        assert_eq!(sents.len(), 3);
        assert_eq!(sents[0].slice(&p.text), "It read something.");
        assert_eq!(sents[1].slice(&p.text), "Then it wrote something.");
    }

    #[test]
    fn no_iocs_identity() {
        let block = "The attacker escalated privileges.";
        let p = protect(block);
        assert_eq!(p.text, block);
        assert_eq!(p.ioc_count(), 0);
    }

    #[test]
    fn ip_subnets_and_urls_protected() {
        let block = "beaconed to 192.168.29.128/32 via http://evil.com/x";
        let p = protect(block);
        assert_eq!(p.text, "beaconed to something via something");
        let tys: Vec<IocType> = p.iocs_in_order().iter().map(|i| i.ty).collect();
        assert_eq!(tys, vec![IocType::IpSubnet, IocType::Url]);
    }

    #[test]
    fn original_offsets_preserved() {
        let block = "run /bin/tar now";
        let p = protect(block);
        let ioc = p.iocs_in_order()[0];
        assert_eq!(&block[ioc.start..ioc.end], "/bin/tar");
    }
}
