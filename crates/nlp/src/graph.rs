//! Threat behavior graph construction (Algorithm 1, stage 10).
//!
//! "We iterate over all IOC entity-relation triplets sorted by the
//! occurrence offset of the relation verb in OSCTI text, and construct a
//! threat behavior graph. Each edge in the graph is associated with a
//! sequence number, indicating the step order."

use crate::ioc::IocType;
use crate::merge::IocTable;
use crate::relext::Triplet;
use std::fmt;

/// A node: one canonical IOC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IocNode {
    /// Node id (== canonical IOC id).
    pub id: usize,
    /// Canonical IOC text.
    pub text: String,
    /// IOC type.
    pub ty: IocType,
}

/// An edge: one extracted relation, with its step order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BehaviorEdge {
    /// Source node id (subject).
    pub src: usize,
    /// Destination node id (object).
    pub dst: usize,
    /// Relation verb lemma.
    pub verb: String,
    /// 1-based sequence number (step order in the report).
    pub seq: u32,
}

/// The threat behavior graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreatBehaviorGraph {
    /// Nodes, indexed by canonical IOC id.
    pub nodes: Vec<IocNode>,
    /// Edges, ordered by sequence number.
    pub edges: Vec<BehaviorEdge>,
}

impl ThreatBehaviorGraph {
    /// Builds the graph from the canonical IOC table and triplets.
    ///
    /// `ordered_triplets` must already be sorted by document order of the
    /// relation verb (the pipeline sorts by `(block, verb_offset)`).
    /// Duplicate `(src, verb, dst)` edges keep their first occurrence.
    pub fn construct(table: &IocTable, ordered_triplets: &[Triplet]) -> ThreatBehaviorGraph {
        let nodes: Vec<IocNode> = table
            .canon
            .iter()
            .enumerate()
            .map(|(id, ioc)| IocNode {
                id,
                text: ioc.text.clone(),
                ty: ioc.ty,
            })
            .collect();
        let mut edges: Vec<BehaviorEdge> = Vec::new();
        for t in ordered_triplets {
            let dup = edges
                .iter()
                .any(|e| e.src == t.subject.0 && e.dst == t.object.0 && e.verb == t.verb);
            if dup {
                continue;
            }
            edges.push(BehaviorEdge {
                src: t.subject.0,
                dst: t.object.0,
                verb: t.verb.clone(),
                seq: edges.len() as u32 + 1,
            });
        }
        ThreatBehaviorGraph { nodes, edges }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Node lookup by text.
    pub fn node_by_text(&self, text: &str) -> Option<&IocNode> {
        self.nodes.iter().find(|n| n.text == text)
    }

    /// Nodes that appear on at least one edge.
    pub fn connected_nodes(&self) -> Vec<&IocNode> {
        self.nodes
            .iter()
            .filter(|n| self.edges.iter().any(|e| e.src == n.id || e.dst == n.id))
            .collect()
    }

    /// Retains only nodes satisfying `keep` (and edges between them),
    /// renumbering node ids densely and resequencing edges — the
    /// screening primitive used by query synthesis.
    pub fn filter_nodes(&self, keep: impl Fn(&IocNode) -> bool) -> ThreatBehaviorGraph {
        let mut remap = vec![usize::MAX; self.nodes.len()];
        let mut nodes = Vec::new();
        for n in &self.nodes {
            if keep(n) {
                remap[n.id] = nodes.len();
                nodes.push(IocNode {
                    id: nodes.len(),
                    text: n.text.clone(),
                    ty: n.ty,
                });
            }
        }
        let mut edges = Vec::new();
        for e in &self.edges {
            let (s, d) = (remap[e.src], remap[e.dst]);
            if s != usize::MAX && d != usize::MAX {
                edges.push(BehaviorEdge {
                    src: s,
                    dst: d,
                    verb: e.verb.clone(),
                    seq: edges.len() as u32 + 1,
                });
            }
        }
        ThreatBehaviorGraph { nodes, edges }
    }

    /// Graphviz rendering for inspection.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph threat_behavior {\n  rankdir=LR;\n");
        for n in &self.nodes {
            s.push_str(&format!(
                "  n{} [label=\"{}\\n({})\"];\n",
                n.id,
                n.text.replace('"', "\\\""),
                n.ty
            ));
        }
        for e in &self.edges {
            s.push_str(&format!(
                "  n{} -> n{} [label=\"{}. {}\"];\n",
                e.src, e.dst, e.seq, e.verb
            ));
        }
        s.push_str("}\n");
        s
    }
}

impl fmt::Display for ThreatBehaviorGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "threat behavior graph: {} nodes, {} edges",
            self.node_count(),
            self.edge_count()
        )?;
        for e in &self.edges {
            writeln!(
                f,
                "  {}. {} -[{}]-> {}",
                e.seq, self.nodes[e.src].text, e.verb, self.nodes[e.dst].text
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ioc::Ioc;
    use crate::merge::{merge, CanonId};

    fn table() -> IocTable {
        let mk = |text: &str, ty| Ioc {
            text: text.into(),
            ty,
            start: 0,
            end: text.len(),
        };
        merge(&[
            mk("/bin/tar", IocType::FilePath),
            mk("/etc/passwd", IocType::FilePath),
            mk("/tmp/upload.tar", IocType::FilePath),
        ])
    }

    fn trip(s: usize, verb: &str, o: usize, off: usize) -> Triplet {
        Triplet {
            subject: CanonId(s),
            verb: verb.into(),
            object: CanonId(o),
            verb_offset: off,
        }
    }

    #[test]
    fn construct_assigns_sequence_numbers() {
        let g = ThreatBehaviorGraph::construct(
            &table(),
            &[trip(0, "read", 1, 10), trip(0, "write", 2, 50)],
        );
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edges[0].seq, 1);
        assert_eq!(g.edges[0].verb, "read");
        assert_eq!(g.edges[1].seq, 2);
    }

    #[test]
    fn duplicate_edges_keep_first() {
        let g = ThreatBehaviorGraph::construct(
            &table(),
            &[trip(0, "read", 1, 10), trip(0, "read", 1, 90)],
        );
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn filter_nodes_renumbers() {
        let g = ThreatBehaviorGraph::construct(
            &table(),
            &[trip(0, "read", 1, 10), trip(0, "write", 2, 20)],
        );
        let f = g.filter_nodes(|n| n.text != "/etc/passwd");
        assert_eq!(f.node_count(), 2);
        assert_eq!(f.edge_count(), 1);
        assert_eq!(f.edges[0].verb, "write");
        assert_eq!(f.edges[0].seq, 1);
        // Dense ids.
        for (i, n) in f.nodes.iter().enumerate() {
            assert_eq!(n.id, i);
        }
    }

    #[test]
    fn display_and_dot() {
        let g = ThreatBehaviorGraph::construct(&table(), &[trip(0, "read", 1, 10)]);
        let text = g.to_string();
        assert!(text.contains("/bin/tar -[read]-> /etc/passwd"));
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 -> n1"));
    }

    #[test]
    fn connected_nodes_and_lookup() {
        let g = ThreatBehaviorGraph::construct(&table(), &[trip(0, "read", 1, 10)]);
        assert_eq!(g.connected_nodes().len(), 2);
        assert!(g.node_by_text("/bin/tar").is_some());
        assert!(g.node_by_text("/nope").is_none());
    }
}
