//! Tokenization of (protected) sentences.
//!
//! Works on protected text, where IOCs are already the single word
//! `something`, so a simple punctuation-aware tokenizer suffices — which
//! is exactly why the paper protects IOCs before invoking general NLP
//! machinery.

use crate::ioc::Ioc;

/// One token of a sentence.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token text. After protection removal this is the original IOC text
    /// for dummy tokens.
    pub text: String,
    /// Start byte offset in the protected block text.
    pub start: usize,
    /// Restored IOC, if this token was a protection dummy.
    pub ioc: Option<Ioc>,
}

impl Token {
    /// Lowercased text (cached nowhere; tokens are small).
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }

    /// True if this token carries an IOC.
    pub fn is_ioc(&self) -> bool {
        self.ioc.is_some()
    }
}

/// Characters split off as standalone punctuation tokens.
fn is_punct(c: char) -> bool {
    matches!(
        c,
        '.' | ',' | ';' | ':' | '!' | '?' | '"' | '(' | ')' | '[' | ']' | '{' | '}' | '…'
    )
}

/// Tokenizes a sentence. `base` is the sentence's start offset within the
/// protected block, so token offsets are block-relative.
pub fn tokenize(sentence: &str, base: usize) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut word_start: Option<usize> = None;
    let flush = |tokens: &mut Vec<Token>, s: usize, e: usize, text: &str| {
        if s < e {
            tokens.push(Token {
                text: text[s..e].to_string(),
                start: base + s,
                ioc: None,
            });
        }
    };
    for (i, c) in sentence.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = word_start.take() {
                flush(&mut tokens, s, i, sentence);
            }
        } else if is_punct(c) {
            // Keep apostrophes inside words (doesn't, attacker's), and
            // periods between digits (3.5) — but the latter only matters
            // for unprotected text.
            let between_digits = c == '.'
                && word_start.is_some()
                && sentence[..i]
                    .chars()
                    .next_back()
                    .is_some_and(|p| p.is_ascii_digit())
                && sentence[i + c.len_utf8()..]
                    .chars()
                    .next()
                    .is_some_and(|n| n.is_ascii_digit());
            if between_digits {
                continue;
            }
            if let Some(s) = word_start.take() {
                flush(&mut tokens, s, i, sentence);
            }
            flush(&mut tokens, i, i + c.len_utf8(), sentence);
        } else if word_start.is_none() {
            word_start = Some(i);
        }
    }
    if let Some(s) = word_start {
        flush(&mut tokens, s, sentence.len(), sentence);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(s: &str) -> Vec<String> {
        tokenize(s, 0).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn basic_split() {
        assert_eq!(
            words("The attacker used something."),
            vec!["The", "attacker", "used", "something", "."]
        );
    }

    #[test]
    fn punctuation_separated() {
        assert_eq!(
            words("It wrote, then read: done!"),
            vec!["It", "wrote", ",", "then", "read", ":", "done", "!"]
        );
        assert_eq!(
            words("the curl utility (something)"),
            vec!["the", "curl", "utility", "(", "something", ")"]
        );
    }

    #[test]
    fn apostrophes_kept() {
        assert_eq!(
            words("attacker's tool doesn't"),
            vec!["attacker's", "tool", "doesn't"]
        );
    }

    #[test]
    fn decimals_kept_together() {
        assert_eq!(words("sized 3.5 MB"), vec!["sized", "3.5", "MB"]);
    }

    #[test]
    fn offsets_are_base_relative() {
        let toks = tokenize("ab cd", 100);
        assert_eq!(toks[0].start, 100);
        assert_eq!(toks[1].start, 103);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("", 0).is_empty());
        assert!(tokenize("   \t ", 0).is_empty());
    }

    #[test]
    fn token_helpers() {
        let t = Token {
            text: "Wrote".into(),
            start: 0,
            ioc: None,
        };
        assert_eq!(t.lower(), "wrote");
        assert!(!t.is_ioc());
    }
}
