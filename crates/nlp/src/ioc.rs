//! IOC recognition (Algorithm 1, stage 2).
//!
//! "We construct a set of regex rules to recognize various types of IOCs
//! (e.g., file name, file path, IP)" (§II-C). This module defines the IOC
//! taxonomy, the rule set (built on [`crate::lightre`]), defang
//! normalization, and the recognizer that resolves overlapping candidate
//! matches by leftmost-longest-then-priority.

use crate::lightre::Regex;
use std::fmt;
use std::sync::OnceLock;

/// IOC categories recognized by the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IocType {
    /// A full URL (`http://…`).
    Url,
    /// An email address.
    Email,
    /// An IPv4 address with a CIDR suffix, e.g. `192.168.29.128/32`.
    IpSubnet,
    /// A bare IPv4 address.
    Ip,
    /// A SHA-256 hex digest.
    Sha256,
    /// A SHA-1 hex digest.
    Sha1,
    /// An MD5 hex digest.
    Md5,
    /// A CVE identifier.
    Cve,
    /// A Windows registry key.
    RegistryKey,
    /// An absolute Unix file path, e.g. `/bin/tar`.
    FilePath,
    /// A DNS domain name.
    Domain,
    /// A bare file name with a known extension, e.g. `upload.tar`.
    FileName,
}

impl IocType {
    /// All types, in priority order (earlier wins on equal-length
    /// overlapping matches).
    pub const ALL: [IocType; 12] = [
        IocType::Url,
        IocType::Email,
        IocType::IpSubnet,
        IocType::Ip,
        IocType::Sha256,
        IocType::Sha1,
        IocType::Md5,
        IocType::Cve,
        IocType::RegistryKey,
        IocType::FilePath,
        IocType::Domain,
        IocType::FileName,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            IocType::Url => "URL",
            IocType::Email => "Email",
            IocType::IpSubnet => "IPSubnet",
            IocType::Ip => "IP",
            IocType::Sha256 => "SHA256",
            IocType::Sha1 => "SHA1",
            IocType::Md5 => "MD5",
            IocType::Cve => "CVE",
            IocType::RegistryKey => "RegistryKey",
            IocType::FilePath => "Filepath",
            IocType::Domain => "Domain",
            IocType::FileName => "Filename",
        }
    }

    /// The regex rule for this type.
    fn pattern(self) -> &'static str {
        match self {
            IocType::Url => r"https?://[A-Za-z0-9./_%?=&#:+-]+",
            IocType::Email => r"[A-Za-z0-9._%+-]+@[A-Za-z0-9-]+(\.[A-Za-z0-9-]+)+",
            IocType::IpSubnet => r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}/\d{1,2}",
            IocType::Ip => r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}",
            IocType::Sha256 => r"[a-fA-F0-9]{64}",
            IocType::Sha1 => r"[a-fA-F0-9]{40}",
            IocType::Md5 => r"[a-fA-F0-9]{32}",
            IocType::Cve => r"CVE-\d{4}-\d{4,7}",
            IocType::RegistryKey => {
                r"(HKEY_LOCAL_MACHINE|HKEY_CURRENT_USER|HKEY_USERS|HKEY_CLASSES_ROOT|HKLM|HKCU)(\\[A-Za-z0-9 ._-]+)+"
            }
            IocType::FilePath => r"(/[A-Za-z0-9._+-]+)+/?",
            IocType::Domain => {
                r"([a-z0-9-]+\.)+(com|net|org|io|ru|cn|info|biz|xyz|top|site|online|club|gov|edu|onion)"
            }
            IocType::FileName => {
                r"[A-Za-z0-9_-]+\.(exe|dll|sys|sh|py|pl|js|doc|docx|xls|xlsx|pdf|zip|rar|tar|gz|bz2|7z|jpg|jpeg|png|gif|txt|log|bat|ps1|vbs|jar|apk|elf|bin|dat|tmp|conf|cfg|sql|db|php|asp|jsp|rtf|hta|lnk|scr)"
            }
        }
    }
}

impl fmt::Display for IocType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One recognized IOC mention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ioc {
    /// The matched text (normalized, e.g. re-fanged).
    pub text: String,
    /// IOC type.
    pub ty: IocType,
    /// Start byte offset in the (normalized) source text.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Ioc {
    /// Length of the mention, in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for empty mentions (never produced by the recognizer).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The compiled rule set.
pub struct IocRecognizer {
    rules: Vec<(IocType, Regex)>,
}

fn shared() -> &'static IocRecognizer {
    static INSTANCE: OnceLock<IocRecognizer> = OnceLock::new();
    INSTANCE.get_or_init(IocRecognizer::new)
}

impl Default for IocRecognizer {
    fn default() -> Self {
        Self::new()
    }
}

impl IocRecognizer {
    /// Compiles the rule set.
    pub fn new() -> IocRecognizer {
        let rules = IocType::ALL
            .iter()
            .map(|&ty| {
                (
                    ty,
                    Regex::new(ty.pattern()).expect("builtin IOC patterns must compile"),
                )
            })
            .collect();
        IocRecognizer { rules }
    }

    /// Returns the process-wide shared recognizer (rules compile once).
    pub fn global() -> &'static IocRecognizer {
        shared()
    }

    /// Recognizes all IOC mentions in `text` (assumed already normalized
    /// via [`normalize_defang`]). Overlaps are resolved by: earlier start
    /// wins; on ties, longer match wins; on ties, higher-priority type
    /// wins.
    pub fn recognize(&self, text: &str) -> Vec<Ioc> {
        let mut candidates: Vec<Ioc> = Vec::new();
        for (ty, re) in &self.rules {
            for m in re.find_iter(text) {
                // Sentence punctuation glued to the end of a textual IOC
                // is not part of it ("read /etc/passwd." — the dot closes
                // the sentence, not the path).
                let mut end = m.end;
                if matches!(
                    ty,
                    IocType::FilePath
                        | IocType::FileName
                        | IocType::Domain
                        | IocType::Url
                        | IocType::Email
                        | IocType::RegistryKey
                ) {
                    while end > m.start
                        && matches!(
                            text[..end].chars().next_back(),
                            Some('.')
                                | Some(',')
                                | Some(';')
                                | Some(':')
                                | Some('!')
                                | Some('?')
                                | Some(')')
                        )
                    {
                        end -= 1;
                    }
                }
                if end == m.start {
                    continue;
                }
                let mention = &text[m.start..end];
                if !self.validate(*ty, mention, text, m.start, end) {
                    continue;
                }
                candidates.push(Ioc {
                    text: mention.to_string(),
                    ty: *ty,
                    start: m.start,
                    end,
                });
            }
        }
        // Resolve overlaps.
        candidates.sort_by(|a, b| {
            a.start
                .cmp(&b.start)
                .then(b.len().cmp(&a.len()))
                .then_with(|| {
                    let pa = IocType::ALL.iter().position(|t| *t == a.ty);
                    let pb = IocType::ALL.iter().position(|t| *t == b.ty);
                    pa.cmp(&pb)
                })
        });
        let mut out: Vec<Ioc> = Vec::new();
        let mut covered_end = 0usize;
        for c in candidates {
            if c.start >= covered_end {
                covered_end = c.end;
                out.push(c);
            }
        }
        out
    }

    /// Type-specific semantic validation beyond the regex shape.
    fn validate(&self, ty: IocType, mention: &str, text: &str, start: usize, end: usize) -> bool {
        // Generic boundary check: an IOC must not be glued to a word
        // character (avoids matching inside longer tokens).
        let before_ok = start == 0
            || !text[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '/');
        let after_ok = end == text.len()
            || !text[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !before_ok || !after_ok {
            return false;
        }
        match ty {
            IocType::Ip | IocType::IpSubnet => {
                let ip_part = mention
                    .split('/')
                    .next()
                    .expect("split yields at least one");
                let octets_ok = ip_part
                    .split('.')
                    .all(|o| o.parse::<u32>().map(|v| v <= 255).unwrap_or(false));
                let cidr_ok = match mention.split_once('/') {
                    Some((_, suffix)) => suffix.parse::<u32>().map(|v| v <= 32).unwrap_or(false),
                    None => true,
                };
                octets_ok && cidr_ok
            }
            IocType::FilePath => {
                // Require at least one slash-separated segment of length
                // ≥ 2 overall, and reject pure-numeric "paths" (e.g. the
                // tail of a fraction).
                mention.len() >= 3 && mention.chars().any(|c| c.is_alphabetic())
            }
            IocType::Domain => {
                // Avoid swallowing file names like `upload.tar` — the TLD
                // list already constrains this; also require ≥ 2 labels.
                mention.split('.').count() >= 2
            }
            _ => true,
        }
    }
}

/// Normalizes defanged indicators so the rules can match them:
/// `hxxp` → `http`, `[.]`/`(.)`/`[dot]` → `.`, `[at]` → `@`,
/// `[:]` → `:`.
///
/// Returns the normalized text. Offsets of all downstream artifacts
/// (IOC mentions, tokens, trees) refer to this normalized text.
pub fn normalize_defang(text: &str) -> String {
    let mut s = text.replace("hxxps", "https").replace("hxxp", "http");
    for (from, to) in [
        ("[.]", "."),
        ("(.)", "."),
        ("[dot]", "."),
        ("(dot)", "."),
        ("[at]", "@"),
        ("(at)", "@"),
        ("[:]", ":"),
    ] {
        s = s.replace(from, to);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(text: &str) -> Vec<(IocType, String)> {
        IocRecognizer::global()
            .recognize(text)
            .into_iter()
            .map(|i| (i.ty, i.text))
            .collect()
    }

    #[test]
    fn recognizes_fig2_iocs() {
        let text = "the attacker used /bin/tar to read user credentials from /etc/passwd. \
                    It wrote to /tmp/upload.tar. Then /bin/bzip2 read /tmp/upload.tar and \
                    wrote /tmp/upload.tar.bz2. /usr/bin/gpg wrote to /tmp/upload. Finally \
                    /usr/bin/curl connected to 192.168.29.128.";
        let found = rec(text);
        let texts: Vec<&str> = found.iter().map(|(_, t)| t.as_str()).collect();
        for expected in [
            "/bin/tar",
            "/etc/passwd",
            "/tmp/upload.tar",
            "/bin/bzip2",
            "/tmp/upload.tar.bz2",
            "/usr/bin/gpg",
            "/tmp/upload",
            "/usr/bin/curl",
            "192.168.29.128",
        ] {
            assert!(texts.contains(&expected), "missing {expected}: {texts:?}");
        }
        // The IP is typed IP; paths are FilePath.
        assert!(found.contains(&(IocType::Ip, "192.168.29.128".into())));
        assert!(found.contains(&(IocType::FilePath, "/bin/tar".into())));
    }

    #[test]
    fn path_trailing_dot_not_swallowed() {
        let found = rec("read from /etc/passwd.");
        assert_eq!(found, vec![(IocType::FilePath, "/etc/passwd".into())]);
        let found = rec("wrote to /tmp/upload.tar.");
        assert_eq!(found, vec![(IocType::FilePath, "/tmp/upload.tar".into())]);
    }

    #[test]
    fn subnet_beats_ip() {
        let found = rec("blocked 192.168.29.128/32 yesterday");
        assert_eq!(found, vec![(IocType::IpSubnet, "192.168.29.128/32".into())]);
    }

    #[test]
    fn invalid_ip_octets_rejected() {
        assert!(rec("version 999.999.999.999 here").is_empty());
        assert!(rec("1.2.3.4/40 nope")
            .iter()
            .all(|(t, _)| *t != IocType::IpSubnet));
    }

    #[test]
    fn hashes_by_length() {
        let md5 = "d41d8cd98f00b204e9800998ecf8427e";
        let sha1 = "da39a3ee5e6b4b0d3255bfef95601890afd80709";
        let sha256 = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
        assert_eq!(rec(md5), vec![(IocType::Md5, md5.into())]);
        assert_eq!(rec(sha1), vec![(IocType::Sha1, sha1.into())]);
        assert_eq!(rec(sha256), vec![(IocType::Sha256, sha256.into())]);
    }

    #[test]
    fn urls_emails_domains() {
        let found = rec("contact bad-guy@evil.com or visit http://evil.com/payload.exe");
        assert!(found.contains(&(IocType::Email, "bad-guy@evil.com".into())));
        assert!(found
            .iter()
            .any(|(t, s)| *t == IocType::Url && s.starts_with("http://evil.com")));
        let found = rec("beacons to update.evil-cdn.net daily");
        assert_eq!(found, vec![(IocType::Domain, "update.evil-cdn.net".into())]);
    }

    #[test]
    fn file_names_and_registry_and_cve() {
        let found = rec("drops payload.exe and sets HKLM\\Software\\Run\\svc");
        assert!(found.contains(&(IocType::FileName, "payload.exe".into())));
        assert!(found
            .iter()
            .any(|(t, s)| *t == IocType::RegistryKey && s.starts_with("HKLM")));
        let found = rec("exploiting CVE-2014-6271 to gain entry");
        assert_eq!(found, vec![(IocType::Cve, "CVE-2014-6271".into())]);
    }

    #[test]
    fn defang_normalization() {
        assert_eq!(
            normalize_defang("hxxp://evil[.]com and 10[.]0[.]0[.]1 bad[at]evil[.]com"),
            "http://evil.com and 10.0.0.1 bad@evil.com"
        );
        let norm = normalize_defang("beacon to hxxps://c2[.]evil[.]com/x");
        let found = rec(&norm);
        assert!(found.iter().any(|(t, _)| *t == IocType::Url));
    }

    #[test]
    fn no_false_positive_inside_words() {
        // `1.2.3.4` inside a version-like token preceded by a word char.
        assert!(rec("libfoo1.2.3.4abc").is_empty());
        // Domain TLD list keeps ordinary words safe.
        assert!(rec("the tar file was compressed").is_empty());
    }

    #[test]
    fn versions_are_not_ips() {
        // Common false positive: 4-part version strings after a word
        // boundary DO look like IPs; octet validation keeps plausible
        // ones. Document the behavior: "version 10.1.2.3" is recognized
        // (indistinguishable without context) but "v10.1.2.3" is not.
        assert!(rec("v10.1.2.3").is_empty());
    }

    #[test]
    fn overlap_resolution_prefers_longest() {
        // upload.tar would match FileName inside the FilePath.
        let found = rec("see /tmp/upload.tar here");
        assert_eq!(found, vec![(IocType::FilePath, "/tmp/upload.tar".into())]);
    }

    #[test]
    fn empty_and_clean_text() {
        assert!(rec("").is_empty());
        assert!(rec("The attacker escalated privileges quietly.").is_empty());
    }

    #[test]
    fn ioc_len_helpers() {
        let ioc = Ioc {
            text: "/bin/tar".into(),
            ty: IocType::FilePath,
            start: 4,
            end: 12,
        };
        assert_eq!(ioc.len(), 8);
        assert!(!ioc.is_empty());
        assert_eq!(IocType::FilePath.label(), "Filepath");
        assert_eq!(IocType::Ip.to_string(), "IP");
    }
}
