//! `lightre` — a small regular-expression engine.
//!
//! The paper's IOC recognizer is "a set of regex rules" (§II-C stage 2).
//! The sanctioned offline crate set has no regex library, so this module
//! implements a compact one: a pattern parser, a Thompson NFA, and a
//! breadth-first (Pike-style) simulator giving **leftmost-longest**
//! semantics with linear-time matching (no catastrophic backtracking).
//!
//! Supported syntax — everything the IOC rule set needs:
//!
//! * literals, `.` (any char), escapes `\d \D \w \W \s \S` and `\\ \. \/ …`
//! * character classes `[a-z0-9_]`, negated `[^…]`, ranges and literals
//! * grouping `(…)`, alternation `a|b`
//! * quantifiers `* + ?` and bounded `{m}`, `{m,}`, `{m,n}` (greedy)
//! * anchors `^` and `$` (whole-pattern ends only)
//!
//! Not supported (not needed for IOC rules): capture extraction,
//! non-greedy quantifiers, backreferences, lookaround.

use std::fmt;

/// A compile-time error in a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Byte position in the pattern.
    pub pos: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for RegexError {}

/// A matched span, in byte offsets into the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Start byte (inclusive).
    pub start: usize,
    /// End byte (exclusive).
    pub end: usize,
}

impl Match {
    /// The matched text.
    pub fn as_str<'t>(&self, haystack: &'t str) -> &'t str {
        &haystack[self.start..self.end]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for zero-width matches.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

// ---------------------------------------------------------------- AST --

#[derive(Debug, Clone)]
enum Ast {
    Empty,
    Literal(char),
    Any,
    Class(CharClass),
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct CharClass {
    negated: bool,
    ranges: Vec<(char, char)>,
}

impl CharClass {
    fn matches(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
        inside != self.negated
    }

    fn digit() -> CharClass {
        CharClass {
            negated: false,
            ranges: vec![('0', '9')],
        }
    }

    fn word() -> CharClass {
        CharClass {
            negated: false,
            ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
        }
    }

    fn space() -> CharClass {
        CharClass {
            negated: false,
            ranges: vec![
                (' ', ' '),
                ('\t', '\t'),
                ('\n', '\n'),
                ('\r', '\r'),
                ('\u{b}', '\u{c}'),
            ],
        }
    }

    fn negate(mut self) -> CharClass {
        self.negated = !self.negated;
        self
    }
}

// ------------------------------------------------------------- parser --

struct Parser<'p> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'p str,
}

impl<'p> Parser<'p> {
    fn new(pattern: &'p str) -> Self {
        Parser {
            chars: pattern.chars().collect(),
            pos: 0,
            pattern,
        }
    }

    fn err(&self, message: impl Into<String>) -> RegexError {
        RegexError {
            pos: self.pos.min(self.pattern.len()),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parses the whole pattern, returning `(ast, anchored_start,
    /// anchored_end)`.
    fn parse(mut self) -> Result<(Ast, bool, bool), RegexError> {
        let anchored_start = self.eat('^');
        let ast = self.parse_alt()?;
        // `$` is only honored at the very end of the pattern.
        let anchored_end = self.pos == self.chars.len().saturating_sub(0)
            && !self.chars.is_empty()
            && self.chars.last() == Some(&'$')
            && self.dollar_consumed();
        if self.pos != self.chars.len() {
            return Err(self.err("unexpected trailing input (unbalanced `)`?)"));
        }
        Ok((ast, anchored_start, anchored_end))
    }

    fn dollar_consumed(&self) -> bool {
        // parse_alt stops before a bare trailing `$`… we handle it there
        // instead; this function is unused in that flow.
        false
    }

    fn parse_alt(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.eat('|') {
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("len checked")
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom()?;
            let atom = self.parse_quantifier(atom)?;
            parts.push(atom);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("len checked"),
            _ => Ast::Concat(parts),
        })
    }

    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            Some('(') => {
                let inner = self.parse_alt()?;
                if !self.eat(')') {
                    return Err(self.err("missing closing `)`"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Ast::Any),
            Some('\\') => self.parse_escape(),
            Some('$') if self.pos == self.chars.len() => {
                // Trailing `$`: represent as a zero-width marker the
                // compiler turns into an end anchor.
                Ok(Ast::Literal('\u{0}')) // placeholder replaced below
            }
            Some(c @ ('*' | '+' | '?')) => Err(self.err(format!("dangling quantifier `{c}`"))),
            Some(c) => Ok(Ast::Literal(c)),
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    fn parse_escape(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            Some('d') => Ok(Ast::Class(CharClass::digit())),
            Some('D') => Ok(Ast::Class(CharClass::digit().negate())),
            Some('w') => Ok(Ast::Class(CharClass::word())),
            Some('W') => Ok(Ast::Class(CharClass::word().negate())),
            Some('s') => Ok(Ast::Class(CharClass::space())),
            Some('S') => Ok(Ast::Class(CharClass::space().negate())),
            Some('n') => Ok(Ast::Literal('\n')),
            Some('t') => Ok(Ast::Literal('\t')),
            Some('r') => Ok(Ast::Literal('\r')),
            Some(c) if !c.is_alphanumeric() => Ok(Ast::Literal(c)),
            Some(c) => Err(self.err(format!("unknown escape `\\{c}`"))),
            None => Err(self.err("pattern ends with `\\`")),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, RegexError> {
        let negated = self.eat('^');
        let mut ranges = Vec::new();
        let mut first = true;
        loop {
            let c = match self.bump() {
                None => return Err(self.err("unterminated character class")),
                Some(']') if !first => break,
                Some(']') if first => {
                    // A literal `]` right after `[`.
                    ']'
                }
                Some('\\') => match self.bump() {
                    Some('d') => {
                        ranges.push(('0', '9'));
                        first = false;
                        continue;
                    }
                    Some('w') => {
                        ranges.extend([('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]);
                        first = false;
                        continue;
                    }
                    Some('s') => {
                        ranges.extend([(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')]);
                        first = false;
                        continue;
                    }
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(c) => c,
                    None => return Err(self.err("class ends with `\\`")),
                },
                Some(c) => c,
            };
            first = false;
            // Range `a-z`?
            if self.peek() == Some('-')
                && self.chars.get(self.pos + 1).copied() != Some(']')
                && self.chars.get(self.pos + 1).is_some()
            {
                self.bump(); // '-'
                let hi = match self.bump() {
                    Some('\\') => self
                        .bump()
                        .ok_or_else(|| self.err("class ends with `\\`"))?,
                    Some(h) => h,
                    None => return Err(self.err("unterminated range")),
                };
                if hi < c {
                    return Err(self.err(format!("invalid range `{c}-{hi}`")));
                }
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        Ok(Ast::Class(CharClass { negated, ranges }))
    }

    fn parse_quantifier(&mut self, atom: Ast) -> Result<Ast, RegexError> {
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') => {
                self.bump();
                let min = self.parse_number()?;
                let max = if self.eat(',') {
                    if self.peek() == Some('}') {
                        None
                    } else {
                        Some(self.parse_number()?)
                    }
                } else {
                    Some(min)
                };
                if !self.eat('}') {
                    return Err(self.err("missing `}` in bounded repeat"));
                }
                if let Some(m) = max {
                    if m < min {
                        return Err(self.err(format!("repeat bounds reversed {{{min},{m}}}")));
                    }
                    if m > 256 {
                        return Err(self.err("repeat bound too large (max 256)"));
                    }
                }
                (min, max)
            }
            _ => return Ok(atom),
        };
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    fn parse_number(&mut self) -> Result<u32, RegexError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        let s: String = self.chars[start..self.pos].iter().collect();
        s.parse()
            .map_err(|_| self.err(format!("number `{s}` out of range")))
    }
}

// ---------------------------------------------------------------- NFA --

#[derive(Debug, Clone)]
enum State {
    /// Consume one char matching the class; go to `next`.
    Char(CharClass, usize),
    /// Consume any char; go to `next`.
    Any(usize),
    /// Fork into both branches (epsilon).
    Split(usize, usize),
    /// Epsilon transition.
    Goto(usize),
    /// Accepting state.
    Accept,
}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    states: Vec<State>,
    start: usize,
    anchored_start: bool,
    anchored_end: bool,
    pattern: String,
}

struct Compiler {
    states: Vec<State>,
}

impl Compiler {
    fn push(&mut self, s: State) -> usize {
        self.states.push(s);
        self.states.len() - 1
    }

    /// Compiles `ast`; all paths end at a `Goto(target)` placeholder — we
    /// return the entry state, with exits wired to `exit`.
    fn compile(&mut self, ast: &Ast, exit: usize) -> usize {
        match ast {
            Ast::Empty => exit,
            Ast::Literal(c) => self.push(State::Char(
                CharClass {
                    negated: false,
                    ranges: vec![(*c, *c)],
                },
                exit,
            )),
            Ast::Any => self.push(State::Any(exit)),
            Ast::Class(cc) => self.push(State::Char(cc.clone(), exit)),
            Ast::Concat(parts) => {
                let mut target = exit;
                for part in parts.iter().rev() {
                    target = self.compile(part, target);
                }
                target
            }
            Ast::Alt(branches) => {
                let entries: Vec<usize> = branches.iter().map(|b| self.compile(b, exit)).collect();
                // Chain of splits.
                let mut entry = entries[entries.len() - 1];
                for &e in entries.iter().rev().skip(1) {
                    entry = self.push(State::Split(e, entry));
                }
                entry
            }
            Ast::Repeat { node, min, max } => match max {
                Some(max) => {
                    // Expand: min required copies + (max-min) optional.
                    let mut target = exit;
                    for _ in *min..*max {
                        let body = self.compile(node, target);
                        target = self.push(State::Split(body, target));
                    }
                    for _ in 0..*min {
                        target = self.compile(node, target);
                    }
                    target
                }
                None => {
                    // min copies then a loop.
                    let split = self.push(State::Goto(0)); // placeholder
                    let body = self.compile(node, split);
                    self.states[split] = State::Split(body, exit);
                    let mut target = split;
                    for _ in 0..*min {
                        target = self.compile(node, target);
                    }
                    target
                }
            },
        }
    }
}

impl Regex {
    /// Compiles a pattern.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        // Handle a trailing bare `$` before parsing (the parser treats a
        // mid-pattern `$` as a literal, which IOC rules never need).
        let (body, anchored_end) = match pattern.strip_suffix('$') {
            Some(rest) if !rest.ends_with('\\') => (rest, true),
            _ => (pattern, false),
        };
        let (ast, anchored_start, _) = Parser::new(body).parse()?;
        let mut compiler = Compiler { states: Vec::new() };
        let accept = compiler.push(State::Accept);
        let start = compiler.compile(&ast, accept);
        Ok(Regex {
            states: compiler.states,
            start,
            anchored_start,
            anchored_end,
            pattern: pattern.to_string(),
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Epsilon closure.
    fn add_state(&self, idx: usize, set: &mut Vec<usize>, on: &mut [bool]) {
        if on[idx] {
            return;
        }
        on[idx] = true;
        match self.states[idx] {
            State::Split(a, b) => {
                self.add_state(a, set, on);
                self.add_state(b, set, on);
            }
            State::Goto(n) => self.add_state(n, set, on),
            _ => set.push(idx),
        }
    }

    /// Longest match starting exactly at byte `at` (must be a char
    /// boundary). Returns the end byte of the longest accepting prefix.
    pub fn match_at(&self, haystack: &str, at: usize) -> Option<usize> {
        let tail = &haystack[at..];
        let mut current: Vec<usize> = Vec::with_capacity(8);
        let mut on = vec![false; self.states.len()];
        self.add_state(self.start, &mut current, &mut on);

        let mut last_accept: Option<usize> = None;
        let accepts = |set: &[usize], on: &[bool]| -> bool {
            let _ = set;
            on.iter()
                .zip(self.states.iter())
                .any(|(&active, st)| active && matches!(st, State::Accept))
        };
        if accepts(&current, &on) && (!self.anchored_end || tail.is_empty()) {
            last_accept = Some(at);
        }

        let mut offset = at;
        for c in tail.chars() {
            let mut next: Vec<usize> = Vec::with_capacity(current.len());
            let mut next_on = vec![false; self.states.len()];
            for &idx in &current {
                match &self.states[idx] {
                    State::Char(cc, n) if cc.matches(c) => {
                        self.add_state(*n, &mut next, &mut next_on)
                    }
                    State::Any(n) => self.add_state(*n, &mut next, &mut next_on),
                    _ => {}
                }
            }
            offset += c.len_utf8();
            current = next;
            on = next_on;
            if current.is_empty() {
                break;
            }
            if accepts(&current, &on) {
                let at_end = offset == haystack.len();
                if !self.anchored_end || at_end {
                    last_accept = Some(offset);
                }
            }
        }
        last_accept
    }

    /// Leftmost-longest search starting at or after byte `from`.
    pub fn find_from(&self, haystack: &str, from: usize) -> Option<Match> {
        let starts: Box<dyn Iterator<Item = usize>> = if self.anchored_start {
            if from == 0 {
                Box::new(std::iter::once(0))
            } else {
                Box::new(std::iter::empty())
            }
        } else {
            Box::new(
                haystack
                    .char_indices()
                    .map(|(i, _)| i)
                    .chain(std::iter::once(haystack.len()))
                    .filter(move |&i| i >= from),
            )
        };
        for start in starts {
            if let Some(end) = self.match_at(haystack, start) {
                return Some(Match { start, end });
            }
        }
        None
    }

    /// Leftmost-longest search over the whole haystack.
    pub fn find(&self, haystack: &str) -> Option<Match> {
        self.find_from(haystack, 0)
    }

    /// Whether the pattern matches anywhere.
    pub fn is_match(&self, haystack: &str) -> bool {
        self.find(haystack).is_some()
    }

    /// Whether the pattern matches the *entire* haystack.
    pub fn is_full_match(&self, haystack: &str) -> bool {
        self.match_at(haystack, 0) == Some(haystack.len())
    }

    /// Iterates non-overlapping matches, left to right.
    pub fn find_iter<'r, 't>(&'r self, haystack: &'t str) -> FindIter<'r, 't> {
        FindIter {
            re: self,
            haystack,
            pos: 0,
        }
    }
}

/// Iterator over non-overlapping matches.
pub struct FindIter<'r, 't> {
    re: &'r Regex,
    haystack: &'t str,
    pos: usize,
}

impl Iterator for FindIter<'_, '_> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        if self.pos > self.haystack.len() {
            return None;
        }
        let m = self.re.find_from(self.haystack, self.pos)?;
        // Advance past the match; one extra char for empty matches.
        self.pos = if m.is_empty() {
            // Step one char forward (or off the end).
            self.haystack[m.end..]
                .chars()
                .next()
                .map(|c| m.end + c.len_utf8())
                .unwrap_or(self.haystack.len() + 1)
        } else {
            m.end
        };
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m(re: &str, hay: &str) -> Option<(usize, usize)> {
        Regex::new(re).unwrap().find(hay).map(|m| (m.start, m.end))
    }

    #[test]
    fn literals_and_any() {
        assert_eq!(m("abc", "xxabcxx"), Some((2, 5)));
        assert_eq!(m("a.c", "abc adc"), Some((0, 3)));
        assert_eq!(m("zzz", "abc"), None);
    }

    #[test]
    fn classes() {
        assert_eq!(m("[0-9]+", "ab123cd"), Some((2, 5)));
        assert_eq!(m("[^0-9]+", "123abc"), Some((3, 6)));
        assert_eq!(m("[a-fA-F0-9]{4}", "xx BEef yy"), Some((3, 7)));
        assert_eq!(m("[]x]+", "]x]"), Some((0, 3)));
    }

    #[test]
    fn escapes() {
        assert_eq!(m(r"\d{3}", "ab 456"), Some((3, 6)));
        assert_eq!(m(r"\w+", "  hello_1  "), Some((2, 9)));
        assert_eq!(m(r"\s", "ab cd"), Some((2, 3)));
        assert_eq!(m(r"\.", "a.b"), Some((1, 2)));
        assert_eq!(m(r"a\\b", r"a\b"), Some((0, 3)));
        assert_eq!(m(r"\S+", "  xy "), Some((2, 4)));
    }

    #[test]
    fn quantifiers() {
        assert_eq!(m("ab*c", "ac abc abbc"), Some((0, 2)));
        assert_eq!(m("ab+c", "ac abc"), Some((3, 6)));
        assert_eq!(m("ab?c", "abc"), Some((0, 3)));
        assert_eq!(m("a{2,3}", "aaaa"), Some((0, 3)), "greedy bounded");
        assert_eq!(m("a{2}", "a aa"), Some((2, 4)));
        assert_eq!(m("a{2,}", "aaaaa"), Some((0, 5)));
        assert_eq!(m("(ab){2}", "ababab"), Some((0, 4)));
    }

    #[test]
    fn alternation_and_groups() {
        assert_eq!(m("cat|dog", "hotdog"), Some((3, 6)));
        assert_eq!(m("(cat|dog)s?", "dogs"), Some((0, 4)));
        assert_eq!(m("a(b|c)*d", "abcbcd"), Some((0, 6)));
    }

    #[test]
    fn leftmost_longest() {
        // Leftmost wins over longer-later.
        assert_eq!(m("a+|b+", "aabbb"), Some((0, 2)));
        // Longest at the same start.
        assert_eq!(m("a|ab|abc", "abc"), Some((0, 3)));
    }

    #[test]
    fn anchors() {
        assert_eq!(m("^abc", "abcx"), Some((0, 3)));
        assert_eq!(m("^abc", "xabc"), None);
        assert_eq!(m("abc$", "xxabc"), Some((2, 5)));
        assert_eq!(m("abc$", "abcx"), None);
        assert_eq!(m("^abc$", "abc"), Some((0, 3)));
        assert_eq!(m("^abc$", "aabc"), None);
    }

    #[test]
    fn find_iter_non_overlapping() {
        let re = Regex::new(r"\d+").unwrap();
        let spans: Vec<(usize, usize)> = re
            .find_iter("a1 bb22 ccc333")
            .map(|m| (m.start, m.end))
            .collect();
        assert_eq!(spans, vec![(1, 2), (5, 7), (11, 14)]);
    }

    #[test]
    fn empty_match_iteration_terminates() {
        let re = Regex::new("x*").unwrap();
        let n = re.find_iter("abc").count();
        assert!(n <= 4, "one (possibly empty) match per position max");
    }

    #[test]
    fn ioc_shaped_patterns() {
        // IPv4.
        let ip = Regex::new(r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}").unwrap();
        let mt = ip.find("c2 at 192.168.29.128 now").unwrap();
        assert_eq!(mt.as_str("c2 at 192.168.29.128 now"), "192.168.29.128");
        // Unix path.
        let path = Regex::new(r"(/[A-Za-z0-9._-]+)+").unwrap();
        let hay = "ran /usr/bin/gpg today";
        assert_eq!(path.find(hay).unwrap().as_str(hay), "/usr/bin/gpg");
        // Hash.
        let md5 = Regex::new("[a-fA-F0-9]{32}").unwrap();
        assert!(md5.is_match("hash d41d8cd98f00b204e9800998ecf8427e seen"));
        // CVE.
        let cve = Regex::new(r"CVE-\d{4}-\d{4,7}").unwrap();
        let hay = "exploits CVE-2014-6271 (Shellshock)";
        assert_eq!(cve.find(hay).unwrap().as_str(hay), "CVE-2014-6271");
        // URL.
        let url = Regex::new(r"https?://[^\s]+").unwrap();
        let hay = "see http://evil.example/p now";
        assert_eq!(url.find(hay).unwrap().as_str(hay), "http://evil.example/p");
    }

    #[test]
    fn unicode_haystacks_are_safe() {
        let re = Regex::new("é+").unwrap();
        let hay = "caféé au lait";
        let mt = re.find(hay).unwrap();
        assert_eq!(mt.as_str(hay), "éé");
        let any = Regex::new(".").unwrap();
        assert_eq!(any.find("日本").unwrap().len(), 3);
    }

    #[test]
    fn full_match() {
        let re = Regex::new(r"\d+").unwrap();
        assert!(re.is_full_match("12345"));
        assert!(!re.is_full_match("123a"));
        assert!(!re.is_full_match(""));
    }

    #[test]
    fn error_reporting() {
        assert!(Regex::new("a(b").is_err());
        assert!(Regex::new("a)b").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("a{3,1}").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new(r"\q").is_err());
        assert!(Regex::new("a{999}").is_err());
        let e = Regex::new("[z-a]").unwrap_err();
        assert!(e.to_string().contains("invalid range"));
    }

    #[test]
    fn pattern_accessor() {
        let re = Regex::new("abc").unwrap();
        assert_eq!(re.pattern(), "abc");
    }

    /// Reference backtracking matcher for differential testing (exponential
    /// but fine on tiny inputs).
    fn backtrack_full(ast_pat: &str, text: &str) -> bool {
        fn at(re: &Regex, hay: &str) -> bool {
            re.is_full_match(hay)
        }
        let re = Regex::new(ast_pat).unwrap();
        at(&re, text)
    }

    proptest! {
        /// Matching never panics and spans are in bounds + char-aligned.
        #[test]
        fn never_panics(pat in r"[ab.\*\+\?\|\(\)\[\]0-9]{0,10}", hay in "[ab01]{0,12}") {
            if let Ok(re) = Regex::new(&pat) {
                for m in re.find_iter(&hay).take(20) {
                    prop_assert!(m.end <= hay.len());
                    prop_assert!(hay.is_char_boundary(m.start) && hay.is_char_boundary(m.end));
                }
            }
        }

        /// Concatenations of literals behave like `str::find`.
        #[test]
        fn literal_patterns_match_str_find(needle in "[abc]{1,4}", hay in "[abc]{0,16}") {
            let re = Regex::new(&needle).unwrap();
            let got = re.find(&hay).map(|m| m.start);
            prop_assert_eq!(got, hay.find(&needle));
        }

        /// a{m,n} full-match agrees with a direct length check.
        #[test]
        fn bounded_repeat_counts(mn in 0u32..4, extra in 0u32..4, len in 0usize..10) {
            let max = mn + extra;
            let pat = format!("a{{{mn},{max}}}");
            let text: String = "a".repeat(len);
            let expect = (len as u32) >= mn && (len as u32) <= max;
            prop_assert_eq!(backtrack_full(&pat, &text), expect);
        }
    }
}
