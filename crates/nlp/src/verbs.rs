//! Verb lexicons: security-relevant relation verbs and general verbs.
//!
//! The annotation stage marks "candidate IOC relation verbs" (§II-C stage
//! 4); candidates come from [`SECURITY_VERBS`]. [`INSTRUMENT_VERBS`] are
//! the "used X to …" verbs whose direct object acts as the semantic
//! subject of the embedded action — the pattern behind Fig. 2's "the
//! attacker used /bin/tar to read … from /etc/passwd" ⇒ (tar, read,
//! passwd).

/// Lemmas of verbs that can label an IOC relation edge.
pub const SECURITY_VERBS: &[&str] = &[
    "read",
    "write",
    "open",
    "create",
    "drop",
    "download",
    "upload",
    "send",
    "receive",
    "transfer",
    "exfiltrate",
    "leak",
    "steal",
    "copy",
    "move",
    "rename",
    "delete",
    "remove",
    "modify",
    "overwrite",
    "encrypt",
    "decrypt",
    "compress",
    "archive",
    "pack",
    "unpack",
    "extract",
    "execute",
    "run",
    "launch",
    "spawn",
    "start",
    "invoke",
    "inject",
    "load",
    "connect",
    "communicate",
    "beacon",
    "resolve",
    "scan",
    "access",
    "collect",
    "gather",
    "harvest",
    "compromise",
    "install",
    "persist",
    "register",
    "query",
    "contact",
    "post",
    "fetch",
    "request",
    "retrieve",
    "store",
    "save",
    "append",
    "log",
    "dump",
    "crack",
];

/// Lemmas of instrumental verbs: `used X to <verb> Y` promotes `X` to the
/// subject of `<verb>`.
pub const INSTRUMENT_VERBS: &[&str] = &["use", "leverage", "utilize", "employ"];

/// Additional common verbs the tagger should recognize (they never label
/// edges but must parse as verbs).
pub const COMMON_VERBS: &[&str] = &[
    "use",
    "leverage",
    "utilize",
    "employ",
    "attempt",
    "try",
    "involve",
    "correspond",
    "include",
    "contain",
    "perform",
    "conduct",
    "continue",
    "begin",
    "proceed",
    "make",
    "take",
    "obtain",
    "appear",
    "exploit",
    "penetrate",
    "infiltrate",
    "target",
    "attack",
    "detect",
    "observe",
    "report",
    "identify",
    "encode",
    "decode",
    "escalate",
    "pivot",
    "enumerate",
    "list",
    "search",
    "find",
    "locate",
    "wait",
    "sleep",
    "check",
    "verify",
    "go",
    "come",
    "get",
    "see",
    "show",
    "follow",
    "unfold",
    "happen",
    "occur",
    "resume",
    "emulate",
    "mask",
    "hide",
    "establish",
    "complete",
    "finish",
    "exfil",
];

/// True if `lemma` can label a relation edge.
pub fn is_relation_verb(lemma: &str) -> bool {
    SECURITY_VERBS.contains(&lemma)
}

/// True if `lemma` is instrumental (`use`-like).
pub fn is_instrument_verb(lemma: &str) -> bool {
    INSTRUMENT_VERBS.contains(&lemma)
}

/// True if `lemma` promotes its object to the actor of an embedded
/// clause the way `use` does: "executed X to scan Y" means X scans Y.
pub fn is_executing_instrument(lemma: &str) -> bool {
    is_instrument_verb(lemma)
        || matches!(
            lemma,
            "execute" | "run" | "launch" | "invoke" | "spawn" | "start"
        )
}

/// True if `lemma` is any known verb (for POS tagging).
pub fn is_known_verb(lemma: &str) -> bool {
    SECURITY_VERBS.contains(&lemma)
        || INSTRUMENT_VERBS.contains(&lemma)
        || COMMON_VERBS.contains(&lemma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(is_relation_verb("read"));
        assert!(is_relation_verb("connect"));
        assert!(!is_relation_verb("use"));
        assert!(is_instrument_verb("leverage"));
        assert!(!is_instrument_verb("read"));
        assert!(is_known_verb("use"));
        assert!(is_known_verb("exploit"));
        assert!(!is_known_verb("table"));
    }

    #[test]
    fn lexicons_are_lemma_form() {
        for w in SECURITY_VERBS
            .iter()
            .chain(INSTRUMENT_VERBS)
            .chain(COMMON_VERBS)
        {
            assert!(!w.ends_with("ing"), "{w} must be a lemma");
            assert_eq!(*w, w.to_lowercase());
        }
    }
}
