//! Part-of-speech tagging (unsupervised: lexicons + shape heuristics).

use crate::lemma::lemmatize;
use crate::lexicon;
use crate::protect::DUMMY;
use crate::token::Token;
use crate::verbs;
use std::fmt;

/// Coarse POS tags (UD-flavored).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PosTag {
    /// Nouns (incl. proper nouns and the protection dummy).
    Noun,
    /// Main verbs.
    Verb,
    /// Auxiliary / copular verbs.
    Aux,
    /// Adjectives (incl. participial modifiers).
    Adj,
    /// Adverbs.
    Adv,
    /// Pronouns.
    Pron,
    /// Determiners.
    Det,
    /// Adpositions (prepositions).
    Adp,
    /// Conjunctions (coordinating and subordinating).
    Conj,
    /// Numerals.
    Num,
    /// Particles (infinitival `to`).
    Part,
    /// Punctuation.
    Punct,
    /// Anything else.
    Other,
}

impl PosTag {
    /// True for noun-like tags that can head an NP.
    pub fn is_nominal(self) -> bool {
        matches!(self, PosTag::Noun | PosTag::Pron | PosTag::Num)
    }
}

impl fmt::Display for PosTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PosTag::Noun => "NOUN",
            PosTag::Verb => "VERB",
            PosTag::Aux => "AUX",
            PosTag::Adj => "ADJ",
            PosTag::Adv => "ADV",
            PosTag::Pron => "PRON",
            PosTag::Det => "DET",
            PosTag::Adp => "ADP",
            PosTag::Conj => "CONJ",
            PosTag::Num => "NUM",
            PosTag::Part => "PART",
            PosTag::Punct => "PUNCT",
            PosTag::Other => "X",
        };
        f.write_str(s)
    }
}

/// Tags a tokenized sentence.
pub fn tag(tokens: &[Token]) -> Vec<PosTag> {
    let mut tags: Vec<PosTag> = Vec::with_capacity(tokens.len());
    for (i, tok) in tokens.iter().enumerate() {
        let tag = tag_one(tok, i, tokens, &tags);
        tags.push(tag);
    }
    tags
}

fn tag_one(tok: &Token, i: usize, tokens: &[Token], prev_tags: &[PosTag]) -> PosTag {
    let text = &tok.text;
    let lower = tok.lower();
    let first = text.chars().next().unwrap_or(' ');

    if first.is_ascii_punctuation() && text.chars().all(|c| !c.is_alphanumeric()) {
        return PosTag::Punct;
    }
    if text
        .chars()
        .all(|c| c.is_ascii_digit() || c == '.' || c == ',')
        && first.is_ascii_digit()
    {
        return PosTag::Num;
    }
    if lower == DUMMY {
        return PosTag::Noun;
    }
    if lower == "to" {
        // Infinitival `to` before a verb; otherwise a preposition.
        let next_is_verb = tokens
            .get(i + 1)
            .map(|n| verbs::is_known_verb(&lemmatize(&n.lower())))
            .unwrap_or(false);
        return if next_is_verb {
            PosTag::Part
        } else {
            PosTag::Adp
        };
    }
    if lower == "not" || lower == "n't" {
        return PosTag::Adv;
    }
    if lexicon::contains(lexicon::AUXILIARIES, &lower) {
        // `have`/`do` as main verbs are rare in this prose; keep AUX.
        return PosTag::Aux;
    }
    if lexicon::contains(lexicon::DETERMINERS, &lower) {
        // "that"/"no" are also SCONJ/interjection; DET is the safer parse
        // before a noun, which is the common case here.
        return PosTag::Det;
    }
    if lexicon::contains(lexicon::PRONOUNS, &lower) {
        return PosTag::Pron;
    }
    if lexicon::contains(lexicon::CCONJ, &lower) {
        return PosTag::Conj;
    }
    if lexicon::contains(lexicon::PREPOSITIONS, &lower) {
        return PosTag::Adp;
    }
    if lexicon::contains(lexicon::SCONJ, &lower) {
        return PosTag::Conj;
    }
    if lexicon::contains(lexicon::ADVERBS, &lower) {
        return PosTag::Adv;
    }
    // Participles of known verbs directly after an auxiliary are the
    // passive verb, even when the form doubles as an adjective:
    // "was compressed", "were gathered".
    if (lower.ends_with("ed") || lower.ends_with("en"))
        && prev_tags.last() == Some(&PosTag::Aux)
        && verbs::is_known_verb(&lemmatize(&lower))
    {
        return PosTag::Verb;
    }
    if lexicon::contains(lexicon::ADJECTIVES, &lower) {
        return PosTag::Adj;
    }

    let lemma = lemmatize(&lower);
    if verbs::is_known_verb(&lemma) {
        let prev = prev_tags.last().copied();
        // Participle after a determiner/adjective modifies a noun:
        // "the launched process", "the gathered information".
        let is_participle = lower.ends_with("ed") || lower.ends_with("en");
        if is_participle && matches!(prev, Some(PosTag::Det) | Some(PosTag::Adj)) {
            return PosTag::Adj;
        }
        // Sentence-initial participle fronting a noun phrase:
        // "Collected documents were …".
        if is_participle && prev.is_none() && first.is_uppercase() {
            return PosTag::Adj;
        }
        // A bare-lemma "verb" right after a determiner/adjective is a
        // nominalization: "the dump", "the archive", "the copy".
        // Inflected forms ("This corresponds…") stay verbs — a
        // determiner like "this" can front a finite clause subject.
        if lemma == lower
            && !is_participle
            && !lower.ends_with("ing")
            && matches!(prev, Some(PosTag::Det) | Some(PosTag::Adj))
        {
            return PosTag::Noun;
        }
        // Gerund after a preposition stays a verb (pcomp): "by using …".
        return PosTag::Verb;
    }

    if lower.ends_with("ly") {
        return PosTag::Adv;
    }
    if lower.ends_with("ous")
        || lower.ends_with("ive")
        || lower.ends_with("ful")
        || lower.ends_with("less")
        || lower.ends_with("able")
        || lower.ends_with("ible")
    {
        return PosTag::Adj;
    }
    // Unknown -ed after a nominal is probably a verb we don't know:
    // "the attacker pivoted".
    if lower.ends_with("ed") && prev_tags.last().copied().is_some_and(|t| t.is_nominal()) {
        return PosTag::Verb;
    }
    PosTag::Noun
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn tags_of(s: &str) -> Vec<(String, PosTag)> {
        let toks = tokenize(s, 0);
        let tags = tag(&toks);
        toks.into_iter().map(|t| t.text).zip(tags).collect()
    }

    fn tag_seq(s: &str) -> Vec<PosTag> {
        tags_of(s).into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn fig2_style_sentence() {
        let tags = tags_of("the attacker used something to read user credentials from something");
        let expect = [
            PosTag::Det,
            PosTag::Noun,
            PosTag::Verb,
            PosTag::Noun,
            PosTag::Part,
            PosTag::Verb,
            PosTag::Noun,
            PosTag::Noun,
            PosTag::Adp,
            PosTag::Noun,
        ];
        for ((w, got), want) in tags.iter().zip(expect) {
            assert_eq!(*got, want, "token `{w}`");
        }
    }

    #[test]
    fn pronoun_and_past_tense() {
        assert_eq!(
            tag_seq("It wrote the gathered information to something"),
            vec![
                PosTag::Pron,
                PosTag::Verb,
                PosTag::Det,
                PosTag::Adj,
                PosTag::Noun,
                PosTag::Adp,
                PosTag::Noun
            ]
        );
    }

    #[test]
    fn participial_adjective_after_det() {
        let tags = tags_of("the launched process something reading from something");
        assert_eq!(tags[1].1, PosTag::Adj, "launched");
        assert_eq!(tags[2].1, PosTag::Noun, "process");
        assert_eq!(tags[4].1, PosTag::Verb, "reading");
    }

    #[test]
    fn auxiliaries_and_passive() {
        assert_eq!(
            tag_seq("something was downloaded by the attacker"),
            vec![
                PosTag::Noun,
                PosTag::Aux,
                PosTag::Verb,
                PosTag::Adp,
                PosTag::Det,
                PosTag::Noun
            ]
        );
    }

    #[test]
    fn by_using_gerund() {
        let tags = tags_of("by using something to connect to something");
        assert_eq!(tags[0].1, PosTag::Adp);
        assert_eq!(tags[1].1, PosTag::Verb, "using stays a verb");
        assert_eq!(tags[3].1, PosTag::Part, "infinitival to");
        assert_eq!(tags[4].1, PosTag::Verb, "connect");
    }

    #[test]
    fn punctuation_numbers_adverbs() {
        let tags = tags_of("Then , it quickly sent 42 bytes .");
        assert_eq!(tags[0].1, PosTag::Adv);
        assert_eq!(tags[1].1, PosTag::Punct);
        assert_eq!(tags[3].1, PosTag::Adv);
        assert_eq!(tags[4].1, PosTag::Verb);
        assert_eq!(tags[5].1, PosTag::Num);
        assert_eq!(tags[7].1, PosTag::Punct);
    }

    #[test]
    fn to_disambiguation() {
        let t1 = tags_of("to read");
        assert_eq!(t1[0].1, PosTag::Part);
        let t2 = tags_of("to something");
        assert_eq!(t2[0].1, PosTag::Adp);
    }

    #[test]
    fn nominal_helper() {
        assert!(PosTag::Noun.is_nominal());
        assert!(PosTag::Pron.is_nominal());
        assert!(!PosTag::Verb.is_nominal());
        assert_eq!(PosTag::Noun.to_string(), "NOUN");
    }
}
