//! Dependency trees.

use crate::ioc::Ioc;
use crate::pos::PosTag;
use crate::token::Token;
use std::fmt;

/// Dependency labels (a pragmatic subset of Universal/Stanford labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepLabel {
    /// Sentence root.
    Root,
    /// Nominal subject.
    Nsubj,
    /// Passive nominal subject.
    NsubjPass,
    /// Direct object.
    Dobj,
    /// Object of a preposition.
    Pobj,
    /// Prepositional modifier.
    Prep,
    /// Clausal complement of a preposition ("by **using** …").
    Pcomp,
    /// Auxiliary.
    Aux,
    /// Passive auxiliary.
    AuxPass,
    /// Determiner.
    Det,
    /// Adjectival modifier.
    Amod,
    /// Adverbial modifier.
    Advmod,
    /// Numeric modifier.
    Nummod,
    /// Noun compound modifier.
    Compound,
    /// Apposition ("the curl utility (**/usr/bin/curl**)").
    Appos,
    /// Conjunct.
    Conj,
    /// Coordinating conjunction.
    Cc,
    /// Infinitival marker ("**to** read").
    Mark,
    /// Open clausal complement ("used X **to read** Y").
    Xcomp,
    /// Clausal modifier of a noun ("process X **reading** from Y").
    Acl,
    /// Agent of a passive ("downloaded **by** X").
    Agent,
    /// Copular attribute.
    Attr,
    /// Punctuation.
    Punct,
    /// Unclassified attachment.
    Dep,
}

impl fmt::Display for DepLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepLabel::Root => "root",
            DepLabel::Nsubj => "nsubj",
            DepLabel::NsubjPass => "nsubjpass",
            DepLabel::Dobj => "dobj",
            DepLabel::Pobj => "pobj",
            DepLabel::Prep => "prep",
            DepLabel::Pcomp => "pcomp",
            DepLabel::Aux => "aux",
            DepLabel::AuxPass => "auxpass",
            DepLabel::Det => "det",
            DepLabel::Amod => "amod",
            DepLabel::Advmod => "advmod",
            DepLabel::Nummod => "nummod",
            DepLabel::Compound => "compound",
            DepLabel::Appos => "appos",
            DepLabel::Conj => "conj",
            DepLabel::Cc => "cc",
            DepLabel::Mark => "mark",
            DepLabel::Xcomp => "xcomp",
            DepLabel::Acl => "acl",
            DepLabel::Agent => "agent",
            DepLabel::Attr => "attr",
            DepLabel::Punct => "punct",
            DepLabel::Dep => "dep",
        };
        f.write_str(s)
    }
}

/// Annotations added by stage 4 (tree annotation) and stage 6 (coref).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeAnn {
    /// The node's token is an IOC mention.
    pub is_ioc: bool,
    /// Lemma, when the node is a candidate IOC-relation verb.
    pub relation_verb: Option<String>,
    /// The node is a coreference-candidate pronoun or definite NP.
    pub is_pronoun: bool,
    /// IOC this node was resolved to by coreference.
    pub coref: Option<Ioc>,
    /// Marked removable by tree simplification (stage 5).
    pub pruned: bool,
}

/// One node of a dependency tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DepNode {
    /// The underlying token (IOC-restored after stage 3).
    pub token: Token,
    /// POS tag.
    pub pos: PosTag,
    /// Head index (`None` for the root).
    pub head: Option<usize>,
    /// Dependency label to the head.
    pub label: DepLabel,
    /// Stage annotations.
    pub ann: NodeAnn,
}

impl DepNode {
    /// The IOC carried by this node: its own token's IOC, or the one
    /// resolved by coreference.
    pub fn effective_ioc(&self) -> Option<&Ioc> {
        self.token.ioc.as_ref().or(self.ann.coref.as_ref())
    }
}

/// A dependency tree over one sentence.
#[derive(Debug, Clone, PartialEq)]
pub struct DepTree {
    /// Nodes in token order.
    pub nodes: Vec<DepNode>,
    /// Index of the root node.
    pub root: usize,
}

impl DepTree {
    /// Children of node `i`, in token order.
    pub fn children(&self, i: usize) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.head == Some(i))
            .map(|(j, _)| j)
            .collect()
    }

    /// Nodes from `i` up to the root (inclusive of both).
    pub fn path_to_root(&self, i: usize) -> Vec<usize> {
        let mut path = vec![i];
        let mut cur = i;
        while let Some(h) = self.nodes[cur].head {
            path.push(h);
            cur = h;
            if path.len() > self.nodes.len() {
                // Defensive: a cycle would loop forever; the parser's
                // validation pass prevents this.
                break;
            }
        }
        path
    }

    /// Lowest common ancestor of `a` and `b`.
    pub fn lca(&self, a: usize, b: usize) -> usize {
        let pa = self.path_to_root(a);
        let pb: std::collections::HashSet<usize> = self.path_to_root(b).into_iter().collect();
        for n in pa {
            if pb.contains(&n) {
                return n;
            }
        }
        self.root
    }

    /// Labels on the downward path from `ancestor` (exclusive) to
    /// `descendant` (inclusive): the label of each node as you descend.
    pub fn labels_down(&self, ancestor: usize, descendant: usize) -> Vec<DepLabel> {
        let mut up = Vec::new();
        let mut cur = descendant;
        while cur != ancestor {
            up.push(self.nodes[cur].label);
            match self.nodes[cur].head {
                Some(h) => cur = h,
                None => break,
            }
            if up.len() > self.nodes.len() {
                break;
            }
        }
        up.reverse();
        up
    }

    /// Node indexes on the downward path from `ancestor` (exclusive) to
    /// `descendant` (inclusive), in descending order.
    pub fn nodes_down(&self, ancestor: usize, descendant: usize) -> Vec<usize> {
        let mut up = Vec::new();
        let mut cur = descendant;
        while cur != ancestor {
            up.push(cur);
            match self.nodes[cur].head {
                Some(h) => cur = h,
                None => break,
            }
            if up.len() > self.nodes.len() {
                break;
            }
        }
        up.reverse();
        up
    }

    /// Indexes of nodes carrying IOCs (directly or via coref), skipping
    /// pruned nodes.
    pub fn ioc_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.ann.pruned && n.effective_ioc().is_some())
            .map(|(i, _)| i)
            .collect()
    }

    /// Checks tree shape: exactly one root, all heads in range, acyclic.
    pub fn validate(&self) -> Result<(), String> {
        let roots: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.head.is_none())
            .map(|(i, _)| i)
            .collect();
        if roots.len() != 1 {
            return Err(format!("expected one root, found {roots:?}"));
        }
        if roots[0] != self.root {
            return Err(format!(
                "root field {} != headless node {}",
                self.root, roots[0]
            ));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(h) = n.head {
                if h >= self.nodes.len() {
                    return Err(format!("node {i} head {h} out of range"));
                }
            }
            // Walk up; must reach root within n steps.
            let path = self.path_to_root(i);
            if path.last() != Some(&self.root) {
                return Err(format!("node {i} does not reach the root (cycle?)"));
            }
        }
        Ok(())
    }

    /// One-line render for diagnostics: `token/POS->head(label)`.
    pub fn render(&self) -> String {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let head = n
                    .head
                    .map(|h| self.nodes[h].token.text.clone())
                    .unwrap_or_else(|| "ROOT".into());
                format!("{i}:{}/{}→{}({})", n.token.text, n.pos, head, n.label)
            })
            .collect::<Vec<_>>()
            .join("  ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built tree for: "tar read passwd" (0←1→2).
    fn mini() -> DepTree {
        let node = |text: &str, pos, head, label| DepNode {
            token: Token {
                text: text.into(),
                start: 0,
                ioc: None,
            },
            pos,
            head,
            label,
            ann: NodeAnn::default(),
        };
        DepTree {
            nodes: vec![
                node("tar", PosTag::Noun, Some(1), DepLabel::Nsubj),
                node("read", PosTag::Verb, None, DepLabel::Root),
                node("passwd", PosTag::Noun, Some(1), DepLabel::Dobj),
            ],
            root: 1,
        }
    }

    #[test]
    fn children_and_paths() {
        let t = mini();
        assert_eq!(t.children(1), vec![0, 2]);
        assert_eq!(t.path_to_root(0), vec![0, 1]);
        assert_eq!(t.lca(0, 2), 1);
        assert_eq!(t.lca(0, 1), 1);
        assert_eq!(t.labels_down(1, 2), vec![DepLabel::Dobj]);
        assert!(t.labels_down(1, 1).is_empty());
    }

    #[test]
    fn validation_catches_bad_shapes() {
        let mut t = mini();
        assert!(t.validate().is_ok());
        t.nodes[0].head = Some(0); // self-loop
        assert!(t.validate().is_err());
        let mut t2 = mini();
        t2.nodes[1].head = Some(2);
        t2.nodes[2].head = Some(1); // cycle, no root
        assert!(t2.validate().is_err());
    }

    #[test]
    fn render_is_readable() {
        let r = mini().render();
        assert!(r.contains("read/VERB→ROOT(root)"));
        assert!(r.contains("tar/NOUN→read(nsubj)"));
    }

    #[test]
    fn effective_ioc_prefers_token() {
        use crate::ioc::{Ioc, IocType};
        let mut n = mini().nodes[0].clone();
        assert!(n.effective_ioc().is_none());
        n.ann.coref = Some(Ioc {
            text: "/bin/tar".into(),
            ty: IocType::FilePath,
            start: 0,
            end: 8,
        });
        assert_eq!(n.effective_ioc().unwrap().text, "/bin/tar");
    }
}
