//! IOC relation extraction (Algorithm 1, stage 8).
//!
//! "For each dependency tree, we enumerate all pairs of IOC nodes. Then,
//! for each pair, we check whether they satisfy the subject-object
//! relation by considering their dependency types in the tree. In
//! particular, we consider three parts of their dependency path: one
//! common path from the root to the LCA …; two individual paths from the
//! LCA to each of the nodes, and construct a set of dependency type rules
//! to do the checking. Next, for the pair that passes the checking, we
//! extract its relation verb by first scanning all the annotated
//! candidate verbs in the aforementioned three parts of dependency path,
//! and then selecting the one that is closest to the object IOC node."

use crate::dep::{DepLabel, DepTree};
use crate::ioc::IocType;
use crate::lemma::lemmatize;
use crate::merge::CanonId;
use crate::verbs;
use std::collections::HashMap;

/// An extracted IOC entity-relation triplet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Triplet {
    /// Canonical subject IOC.
    pub subject: CanonId,
    /// Relation verb lemma.
    pub verb: String,
    /// Canonical object IOC.
    pub object: CanonId,
    /// Offset of the relation verb in the block's protected text —
    /// the intra-block ordering key for sequence numbering.
    pub verb_offset: usize,
}

/// Lookup from `(mention text, type)` to canonical id, built by the
/// pipeline after stage 7.
pub type CanonMap = HashMap<(String, IocType), CanonId>;

const SUBJECT_LABELS: &[DepLabel] = &[
    DepLabel::Nsubj,
    DepLabel::NsubjPass,
    DepLabel::Appos,
    DepLabel::Compound,
    DepLabel::Conj,
];

const OBJECT_LABELS: &[DepLabel] = &[
    DepLabel::Dobj,
    DepLabel::Pobj,
    DepLabel::Prep,
    DepLabel::Pcomp,
    DepLabel::Xcomp,
    DepLabel::Conj,
    DepLabel::Acl,
    DepLabel::Appos,
    DepLabel::Compound,
    DepLabel::Attr,
];

const OBJECT_TERMINALS: &[DepLabel] = &[
    DepLabel::Dobj,
    DepLabel::Pobj,
    DepLabel::Attr,
    DepLabel::Appos,
    DepLabel::Conj,
    DepLabel::Compound,
];

/// How the a-side path qualifies as a subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubjectKind {
    /// Grammatical subject (or apposition/compound thereof).
    Plain,
    /// Passive subject — pairs with an agent path for direction swap.
    Passive,
    /// Instrument object of a `use`-like verb.
    Instrument,
    /// The IOC *is* the LCA (noun head with a clausal modifier).
    SelfHead,
}

/// Checks the a-side path. `lca` and the path node indexes give access to
/// the verbs for the instrument check.
fn subject_kind(tree: &DepTree, lca: usize, a: usize) -> Option<SubjectKind> {
    let labels = tree.labels_down(lca, a);
    if labels.is_empty() {
        return Some(SubjectKind::SelfHead);
    }
    if labels.iter().all(|l| SUBJECT_LABELS.contains(l)) {
        // Reject paths that run through a *verb* conjunct: those IOCs
        // belong to the sibling clause, not this subject position.
        if labels.contains(&DepLabel::NsubjPass) {
            return Some(SubjectKind::Passive);
        }
        if labels.contains(&DepLabel::Nsubj) {
            return Some(SubjectKind::Plain);
        }
        // Pure appos/compound chains only qualify under a nominal LCA.
        if tree.nodes[lca].pos == crate::pos::PosTag::Noun {
            return Some(SubjectKind::SelfHead);
        }
        return None;
    }
    // Instrument: [Dobj, (Appos|Compound)*] under a use-like LCA verb —
    // including execute-class verbs ("executed X to scan Y" makes X the
    // actor of the scan).
    if labels[0] == DepLabel::Dobj
        && labels[1..]
            .iter()
            .all(|l| matches!(l, DepLabel::Appos | DepLabel::Compound))
    {
        let lca_lemma = lemmatize(&tree.nodes[lca].token.lower());
        if verbs::is_executing_instrument(&lca_lemma) {
            return Some(SubjectKind::Instrument);
        }
    }
    // Agent of a passive with a non-IOC surface subject ("documents were
    // compressed into F by P"): the agent acts as subject. Leading Conj
    // steps are tolerated (the passive clause may be a conjunct).
    let trimmed: Vec<DepLabel> = labels
        .iter()
        .copied()
        .skip_while(|l| *l == DepLabel::Conj)
        .collect();
    if trimmed.first() == Some(&DepLabel::Agent)
        && trimmed.contains(&DepLabel::Pobj)
        && trimmed[1..]
            .iter()
            .all(|l| matches!(l, DepLabel::Pobj | DepLabel::Appos | DepLabel::Compound))
    {
        return Some(SubjectKind::Plain);
    }
    None
}

/// Checks the b-side path for object-ness.
fn is_object_path(labels: &[DepLabel]) -> bool {
    !labels.is_empty()
        && labels.iter().all(|l| OBJECT_LABELS.contains(l))
        && OBJECT_TERMINALS.contains(labels.last().expect("non-empty"))
}

/// Checks the b-side path for agent-ness (passive "by X").
fn is_agent_path(labels: &[DepLabel]) -> bool {
    labels.first() == Some(&DepLabel::Agent)
        && labels
            .last()
            .is_some_and(|l| matches!(l, DepLabel::Pobj | DepLabel::Appos | DepLabel::Compound))
}

/// Selects the relation verb for an accepted pair: among annotated
/// candidate verbs on (root→LCA) ∪ (LCA→a) ∪ (LCA→b) ∪ {LCA}, the one
/// whose token is closest to the object node's token.
fn select_verb(tree: &DepTree, lca: usize, a: usize, b: usize) -> Option<(String, usize)> {
    let mut candidate_nodes: Vec<usize> = Vec::new();
    candidate_nodes.extend(tree.path_to_root(lca)); // lca → root
    candidate_nodes.extend(tree.nodes_down(lca, a));
    candidate_nodes.extend(tree.nodes_down(lca, b));
    candidate_nodes.push(lca);
    let obj_offset = tree.nodes[b].token.start as i64;
    candidate_nodes
        .into_iter()
        .filter_map(|i| {
            tree.nodes[i]
                .ann
                .relation_verb
                .clone()
                .map(|lemma| (lemma, tree.nodes[i].token.start))
        })
        .min_by_key(|&(_, off)| (off as i64 - obj_offset).abs())
}

/// Extracts triplets from one tree. `canon` maps mention `(text, type)`
/// to canonical ids (so coref-resolved pronouns resolve like their
/// antecedents).
pub fn extract(tree: &DepTree, canon: &CanonMap) -> Vec<Triplet> {
    let ioc_nodes = tree.ioc_nodes();
    let mut out = Vec::new();
    for &a in &ioc_nodes {
        for &b in &ioc_nodes {
            if a == b {
                continue;
            }
            let lca = tree.lca(a, b);
            let Some(kind) = subject_kind(tree, lca, a) else {
                continue;
            };
            let b_labels = tree.labels_down(lca, b);
            let (subj_node, obj_node) = match kind {
                SubjectKind::Passive if is_agent_path(&b_labels) => (b, a),
                SubjectKind::Passive | SubjectKind::Plain | SubjectKind::Instrument => {
                    if !is_object_path(&b_labels) || is_agent_path(&b_labels) {
                        continue;
                    }
                    (a, b)
                }
                SubjectKind::SelfHead => {
                    // Noun-headed: require a clausal path (acl / prep …)
                    // that actually contains a verb.
                    if !is_object_path(&b_labels) {
                        continue;
                    }
                    let has_verbal_step = tree
                        .nodes_down(lca, b)
                        .iter()
                        .any(|&i| tree.nodes[i].pos == crate::pos::PosTag::Verb);
                    if !has_verbal_step {
                        continue;
                    }
                    (a, b)
                }
            };
            let Some((verb, verb_offset)) = select_verb(tree, lca, subj_node, obj_node) else {
                continue;
            };
            let key = |i: usize| {
                let ioc = tree.nodes[i].effective_ioc().expect("ioc node");
                (ioc.text.clone(), ioc.ty)
            };
            let (Some(&s), Some(&o)) = (canon.get(&key(subj_node)), canon.get(&key(obj_node)))
            else {
                continue;
            };
            if s == o {
                continue;
            }
            out.push(Triplet {
                subject: s,
                verb,
                object: o,
                verb_offset,
            });
        }
    }
    // Deduplicate within the tree (appos/compound chains can produce the
    // same triple twice); keep the earliest verb offset.
    out.sort_by(|x, y| {
        (x.subject, &x.verb, x.object, x.verb_offset).cmp(&(
            y.subject,
            &y.verb,
            y.object,
            y.verb_offset,
        ))
    });
    out.dedup_by(|x, y| x.subject == y.subject && x.verb == y.verb && x.object == y.object);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{annotate, restore_iocs};
    use crate::coref::resolve_block;
    use crate::depparse::parse;
    use crate::ioc::Ioc;
    use crate::merge;
    use crate::protect::protect;
    use crate::simplify::simplify;
    use crate::text::segment_sentences;
    use crate::token::tokenize;

    /// Full mini-pipeline over one block; returns (triples as strings).
    fn triples(block: &str) -> Vec<(String, String, String)> {
        let p = protect(block);
        let mut trees: Vec<DepTree> = segment_sentences(&p.text)
            .into_iter()
            .map(|sp| {
                let mut t = parse(tokenize(sp.slice(&p.text), sp.start));
                restore_iocs(&mut t, &p.slots);
                annotate(&mut t);
                simplify(&mut t);
                t
            })
            .collect();
        resolve_block(&mut trees);
        let mentions: Vec<Ioc> = trees
            .iter()
            .flat_map(|t| t.nodes.iter().filter_map(|n| n.token.ioc.clone()))
            .collect();
        let table = merge::merge(&mentions);
        let mut canon: CanonMap = HashMap::new();
        for (i, m) in mentions.iter().enumerate() {
            canon.insert((m.text.clone(), m.ty), table.mention_canon[i]);
        }
        // Coref targets share text/type with some mention, but register
        // canonical texts too (coref clones the canonical Ioc).
        for (ci, c) in table.canon.iter().enumerate() {
            canon.insert((c.text.clone(), c.ty), CanonId(ci));
        }
        let mut out = Vec::new();
        for t in &trees {
            for tr in extract(t, &canon) {
                out.push((
                    table.canon[tr.subject.0].text.clone(),
                    tr.verb.clone(),
                    table.canon[tr.object.0].text.clone(),
                ));
            }
        }
        out
    }

    #[test]
    fn instrument_pattern() {
        let got = triples("The attacker used /bin/tar to read user credentials from /etc/passwd.");
        assert!(
            got.contains(&("/bin/tar".into(), "read".into(), "/etc/passwd".into())),
            "{got:?}"
        );
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn pronoun_subject_via_coref() {
        let got = triples(
            "The attacker used /bin/tar to read user credentials from /etc/passwd. \
             It wrote the gathered information to a file /tmp/upload.tar.",
        );
        assert!(
            got.contains(&("/bin/tar".into(), "write".into(), "/tmp/upload.tar".into())),
            "{got:?}"
        );
    }

    #[test]
    fn ioc_subject_with_conjoined_verbs() {
        let got = triples("/bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2.");
        assert!(
            got.contains(&("/bin/bzip2".into(), "read".into(), "/tmp/upload.tar".into())),
            "{got:?}"
        );
        assert!(
            got.contains(&(
                "/bin/bzip2".into(),
                "write".into(),
                "/tmp/upload.tar.bz2".into()
            )),
            "{got:?}"
        );
    }

    #[test]
    fn noun_headed_acl() {
        let got =
            triples("This corresponds to the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2.");
        assert!(
            got.contains(&(
                "/usr/bin/gpg".into(),
                "read".into(),
                "/tmp/upload.tar.bz2".into()
            )),
            "{got:?}"
        );
    }

    #[test]
    fn by_using_connect() {
        let got = triples(
            "He leaked the data back to the C2 host by using /usr/bin/curl to connect to 192.168.29.128.",
        );
        assert!(
            got.contains(&(
                "/usr/bin/curl".into(),
                "connect".into(),
                "192.168.29.128".into()
            )),
            "{got:?}"
        );
    }

    #[test]
    fn passive_direction_swap() {
        let got = triples("/etc/shadow was read by /tmp/cracker.");
        assert!(
            got.contains(&("/tmp/cracker".into(), "read".into(), "/etc/shadow".into())),
            "{got:?}"
        );
        assert!(!got.contains(&("/etc/shadow".into(), "read".into(), "/tmp/cracker".into())));
    }

    #[test]
    fn conjoined_objects_yield_two_triples() {
        let got = triples("/usr/bin/wget downloaded /tmp/a.sh and /tmp/b.sh.");
        assert!(
            got.contains(&(
                "/usr/bin/wget".into(),
                "download".into(),
                "/tmp/a.sh".into()
            )),
            "{got:?}"
        );
        assert!(
            got.contains(&(
                "/usr/bin/wget".into(),
                "download".into(),
                "/tmp/b.sh".into()
            )),
            "{got:?}"
        );
    }

    #[test]
    fn execute_class_instrument() {
        let got = triples("The attacker executed /tmp/.cache/agent to scan /etc/shadow.");
        assert!(
            got.contains(&(
                "/tmp/.cache/agent".into(),
                "scan".into(),
                "/etc/shadow".into()
            )),
            "{got:?}"
        );
    }

    #[test]
    fn passive_agent_with_non_ioc_subject() {
        let got =
            triples("Collected documents were compressed into /tmp/.arch/out.7z by /usr/bin/7z.");
        assert!(
            got.contains(&(
                "/usr/bin/7z".into(),
                "compress".into(),
                "/tmp/.arch/out.7z".into()
            )),
            "{got:?}"
        );
        // Direction must not be reversed.
        assert!(!got.contains(&(
            "/tmp/.arch/out.7z".into(),
            "compress".into(),
            "/usr/bin/7z".into()
        )));
    }

    #[test]
    fn no_relation_without_verb() {
        let got = triples("Interesting files include /etc/passwd, /etc/shadow.");
        // "include" is not a relation verb; nothing extractable.
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn object_pairs_do_not_relate_to_each_other() {
        let got = triples("The malware wrote /tmp/a.log after reading /etc/hosts.");
        // (a.log, hosts) or (hosts, a.log) must not appear as a pair —
        // both are objects of verbs; only subject-object pairs qualify.
        for (s, _, o) in &got {
            let crossed = (s == "/tmp/a.log" && o == "/etc/hosts")
                || (s == "/etc/hosts" && o == "/tmp/a.log");
            assert!(!crossed, "{got:?}");
        }
    }
}
