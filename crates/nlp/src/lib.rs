//! # threatraptor-nlp
//!
//! The unsupervised, lightweight NLP pipeline of ThreatRaptor (§II-C,
//! Algorithm 1): it turns unstructured OSCTI report text into a **threat
//! behavior graph** of IOCs and IOC relations.
//!
//! Pipeline stages (Algorithm 1 line numbers in parentheses):
//!
//! 1. block segmentation (3) and sentence segmentation (6) — [`text`]
//! 2. IOC recognition & protection (5) — [`ioc`], [`protect`]
//! 3. dependency parsing (7) with protection removal (8) — [`pos`],
//!    [`dep`], [`depparse`]
//! 4. tree annotation (9) — [`annotate`]
//! 5. tree simplification (10) — [`simplify`]
//! 6. coreference resolution (13) — [`coref`]
//! 7. IOC scan & merge (15) — [`embed`], [`merge`]
//! 8. IOC relation extraction (17) — [`relext`]
//! 9. threat behavior graph construction (19) — [`graph`]
//!
//! The original pipeline was built on spaCy; this one is from scratch
//! (see DESIGN.md §2 for the substitution argument), including its own
//! tiny regex engine ([`lightre`]) for the IOC rules.

pub mod annotate;
pub mod coref;
pub mod dep;
pub mod depparse;
pub mod embed;
pub mod graph;
pub mod ioc;
pub mod lemma;
pub mod lexicon;
pub mod lightre;
pub mod merge;
pub mod pipeline;
pub mod pos;
pub mod protect;
pub mod relext;
pub mod simplify;
pub mod text;
pub mod token;
pub mod verbs;

pub use graph::{BehaviorEdge, IocNode, ThreatBehaviorGraph};
pub use ioc::{Ioc, IocType};
pub use pipeline::{ExtractionResult, StageTimings, ThreatExtractor};
