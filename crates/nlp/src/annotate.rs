//! Protection removal (stage 3 tail) and tree annotation (stage 4).
//!
//! "We annotate nodes in the dependency trees whose associated tokens are
//! useful for coreference resolution and relation extraction tasks (e.g.,
//! IOCs, candidate IOC relation verbs, pronouns)." (§II-C)

use crate::dep::DepTree;
use crate::ioc::Ioc;
use crate::lemma::lemmatize;
use crate::pos::PosTag;
use crate::verbs;
use std::collections::HashMap;

/// Replaces protection dummies with their original IOCs: for each node
/// whose token starts at a recorded slot offset, the token text becomes
/// the IOC text and `token.ioc` is set ("we then replace the dummy word
/// with the original IOCs in the trees").
pub fn restore_iocs(tree: &mut DepTree, slots: &HashMap<usize, Ioc>) {
    for node in &mut tree.nodes {
        if let Some(ioc) = slots.get(&node.token.start) {
            node.token.text = ioc.text.clone();
            node.token.ioc = Some(ioc.clone());
        }
    }
}

/// Pronouns that participate in coreference. Human pronouns (he/she/him)
/// and relative pronouns (which) are excluded: they refer to actors or
/// clauses, never to IOC artifacts.
const COREF_PRONOUNS: &[&str] = &["it", "they", "them", "itself"];

/// Annotates IOC nodes, candidate relation verbs (lemmatized), pronouns,
/// and definite-NP coreference sites ("the tar file", "the tool").
pub fn annotate(tree: &mut DepTree) {
    // Definite-NP sites need child inspection; collect first.
    let def_np_sites: Vec<usize> = tree
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, n)| {
            n.pos == PosTag::Noun
                && n.token.ioc.is_none()
                && crate::coref::compatible_types(&n.token.lower()).is_some()
                && tree.nodes.iter().any(|m| {
                    m.head == Some(*i)
                        && m.label == crate::dep::DepLabel::Det
                        && matches!(m.token.lower().as_str(), "the" | "this" | "that")
                })
        })
        .map(|(i, _)| i)
        .collect();

    for (i, node) in tree.nodes.iter_mut().enumerate() {
        node.ann.is_ioc = node.token.ioc.is_some();
        if node.pos == PosTag::Verb {
            let lemma = lemmatize(&node.token.lower());
            if verbs::is_relation_verb(&lemma) {
                node.ann.relation_verb = Some(lemma);
            }
        }
        if node.pos == PosTag::Pron && COREF_PRONOUNS.contains(&node.token.lower().as_str()) {
            node.ann.is_pronoun = true;
        }
        if def_np_sites.contains(&i) {
            node.ann.is_pronoun = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depparse::parse;
    use crate::ioc::IocType;
    use crate::protect::protect;
    use crate::token::tokenize;

    #[test]
    fn restore_then_annotate_fig2_sentence() {
        let block = "the attacker used /bin/tar to read user credentials from /etc/passwd";
        let p = protect(block);
        let mut tree = parse(tokenize(&p.text, 0));
        restore_iocs(&mut tree, &p.slots);
        annotate(&mut tree);

        let ioc_nodes: Vec<&str> = tree
            .nodes
            .iter()
            .filter(|n| n.ann.is_ioc)
            .map(|n| n.token.text.as_str())
            .collect();
        assert_eq!(ioc_nodes, vec!["/bin/tar", "/etc/passwd"]);
        let verbs: Vec<&str> = tree
            .nodes
            .iter()
            .filter_map(|n| n.ann.relation_verb.as_deref())
            .collect();
        assert_eq!(
            verbs,
            vec!["read"],
            "`used` is instrumental, not a relation verb"
        );
        let tar = tree
            .nodes
            .iter()
            .find(|n| n.token.text == "/bin/tar")
            .unwrap();
        assert_eq!(tar.token.ioc.as_ref().unwrap().ty, IocType::FilePath);
    }

    #[test]
    fn pronouns_marked() {
        let mut tree = parse(tokenize("It wrote data to something", 0));
        annotate(&mut tree);
        let it = &tree.nodes[0];
        assert!(it.ann.is_pronoun);
        assert!(tree
            .nodes
            .iter()
            .any(|n| n.ann.relation_verb.as_deref() == Some("write")));
    }

    #[test]
    fn unprotected_dummy_still_plain() {
        // A literal "something" with no slot entry stays a plain noun.
        let p = protect("nothing to see here");
        let mut tree = parse(tokenize(&p.text, 0));
        restore_iocs(&mut tree, &p.slots);
        annotate(&mut tree);
        assert!(tree.nodes.iter().all(|n| !n.ann.is_ioc));
    }
}
