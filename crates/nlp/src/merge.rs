//! IOC scan & merge (Algorithm 1, stage 7).
//!
//! "We scan all IOCs in the trees of all blocks, and merge similar ones
//! based on both the character-level overlap and the word vector
//! similarities." Mentions of the same artifact — `/tmp/upload.tar` vs
//! `upload.tar`, `192.168.29.128` vs `192.168.29.128/32` — collapse into
//! one canonical IOC via union-find; the canonical text is the most
//! specific (longest) mention.

use crate::embed;
use crate::ioc::{Ioc, IocType};

/// Canonical IOC id after merging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonId(pub usize);

/// The merged IOC table.
#[derive(Debug, Clone)]
pub struct IocTable {
    /// Canonical IOCs, indexed by [`CanonId`].
    pub canon: Vec<Ioc>,
    /// For each input mention, its canonical id.
    pub mention_canon: Vec<CanonId>,
}

impl IocTable {
    /// Canonical IOC for a mention index.
    pub fn canon_of(&self, mention_idx: usize) -> &Ioc {
        &self.canon[self.mention_canon[mention_idx].0]
    }

    /// Number of canonical IOCs.
    pub fn len(&self) -> usize {
        self.canon.len()
    }

    /// True when no IOCs were found.
    pub fn is_empty(&self) -> bool {
        self.canon.is_empty()
    }

    /// Finds the canonical id whose text equals `text`, if any.
    pub fn lookup(&self, text: &str) -> Option<CanonId> {
        self.canon.iter().position(|i| i.text == text).map(CanonId)
    }
}

/// Whether two IOC types may merge.
fn type_compatible(a: IocType, b: IocType) -> bool {
    use IocType::*;
    if a == b {
        return true;
    }
    matches!(
        (a, b),
        (FilePath, FileName)
            | (FileName, FilePath)
            | (Ip, IpSubnet)
            | (IpSubnet, Ip)
            | (Url, Domain)
            | (Domain, Url)
    )
}

/// Whether two mentions refer to the same artifact.
fn same_artifact(a: &Ioc, b: &Ioc) -> bool {
    if !type_compatible(a.ty, b.ty) {
        return false;
    }
    if a.text == b.text {
        return true;
    }
    // File name vs full path: exact basename match.
    let basename = |s: &str| s.rsplit('/').next().unwrap_or(s).to_string();
    match (a.ty, b.ty) {
        (IocType::FilePath, IocType::FileName) => return basename(&a.text) == b.text,
        (IocType::FileName, IocType::FilePath) => return basename(&b.text) == a.text,
        (IocType::Ip, IocType::IpSubnet) => {
            return b.text.split('/').next() == Some(a.text.as_str())
        }
        (IocType::IpSubnet, IocType::Ip) => {
            return a.text.split('/').next() == Some(b.text.as_str())
        }
        (IocType::Url, IocType::Domain) => return a.text.contains(&b.text),
        (IocType::Domain, IocType::Url) => return b.text.contains(&a.text),
        _ => {}
    }
    // Same type, fuzzy: both the character overlap and the vector
    // similarity must clear their thresholds (the paper's "both").
    // Deliberately strict: /tmp/upload.tar and /tmp/upload.tar.bz2 are
    // DIFFERENT artifacts and must not merge.
    let overlap = embed::char_overlap(&a.text, &b.text);
    let sim = embed::similarity(&a.text, &b.text) as f64;
    overlap >= 0.9 && sim >= 0.95
}

/// Union-find with path compression.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

/// Merges a list of IOC mentions into a canonical table.
pub fn merge(mentions: &[Ioc]) -> IocTable {
    let n = mentions.len();
    let mut dsu = Dsu::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if same_artifact(&mentions[i], &mentions[j]) {
                dsu.union(i, j);
            }
        }
    }
    // Canonical representative per class: the longest text (most
    // specific); ties broken by earliest appearance.
    let mut class_best: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for i in 0..n {
        let root = dsu.find(i);
        let entry = class_best.entry(root).or_insert(i);
        let better = mentions[i].text.len() > mentions[*entry].text.len();
        if better {
            *entry = i;
        }
    }
    // Stable canon ordering: by first mention index of the class.
    let mut classes: Vec<(usize, usize)> = class_best.iter().map(|(&r, &b)| (r, b)).collect();
    classes.sort_by_key(|&(root, _)| {
        (0..n)
            .find(|&i| {
                dsu.parent[i] == root || {
                    // parent may be un-compressed; compare via find on a clone
                    // is overkill — roots are already compressed by the loop
                    // above.
                    false
                }
            })
            .unwrap_or(root)
    });
    let mut canon = Vec::with_capacity(classes.len());
    let mut root_to_canon: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    for (root, best) in classes {
        root_to_canon.insert(root, canon.len());
        canon.push(mentions[best].clone());
    }
    let mention_canon = (0..n)
        .map(|i| CanonId(root_to_canon[&dsu.find(i)]))
        .collect();
    IocTable {
        canon,
        mention_canon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ioc(text: &str, ty: IocType) -> Ioc {
        Ioc {
            text: text.into(),
            ty,
            start: 0,
            end: text.len(),
        }
    }

    #[test]
    fn exact_duplicates_merge() {
        let t = merge(&[
            ioc("/bin/tar", IocType::FilePath),
            ioc("/bin/tar", IocType::FilePath),
        ]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.mention_canon[0], t.mention_canon[1]);
    }

    #[test]
    fn filename_merges_into_path() {
        let t = merge(&[
            ioc("/tmp/upload.tar", IocType::FilePath),
            ioc("upload.tar", IocType::FileName),
        ]);
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.canon[0].text, "/tmp/upload.tar",
            "canonical = most specific"
        );
    }

    #[test]
    fn ip_merges_with_subnet() {
        let t = merge(&[
            ioc("192.168.29.128", IocType::Ip),
            ioc("192.168.29.128/32", IocType::IpSubnet),
        ]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.canon[0].text, "192.168.29.128/32");
    }

    #[test]
    fn similar_but_distinct_artifacts_stay_apart() {
        let t = merge(&[
            ioc("/tmp/upload.tar", IocType::FilePath),
            ioc("/tmp/upload.tar.bz2", IocType::FilePath),
            ioc("/tmp/upload", IocType::FilePath),
        ]);
        assert_eq!(
            t.len(),
            3,
            "the Fig. 2 chain must keep all three files distinct"
        );
    }

    #[test]
    fn incompatible_types_never_merge() {
        let t = merge(&[
            ioc("10.0.0.1", IocType::Ip),
            ioc("/10.0.0.1", IocType::FilePath),
        ]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fig2_ioc_set_merges_to_nine() {
        let mentions = vec![
            ioc("/bin/tar", IocType::FilePath),
            ioc("/etc/passwd", IocType::FilePath),
            ioc("/tmp/upload.tar", IocType::FilePath),
            ioc("/bin/bzip2", IocType::FilePath),
            ioc("/tmp/upload.tar", IocType::FilePath), // repeated mention
            ioc("/tmp/upload.tar.bz2", IocType::FilePath),
            ioc("/usr/bin/gpg", IocType::FilePath),
            ioc("/tmp/upload.tar.bz2", IocType::FilePath),
            ioc("/tmp/upload", IocType::FilePath),
            ioc("/usr/bin/curl", IocType::FilePath),
            ioc("/tmp/upload", IocType::FilePath),
            ioc("192.168.29.128", IocType::Ip),
        ];
        let t = merge(&mentions);
        assert_eq!(t.len(), 9, "Fig. 2 lists exactly 9 distinct IOCs");
    }

    #[test]
    fn lookup_and_accessors() {
        let t = merge(&[ioc("/bin/tar", IocType::FilePath)]);
        assert!(!t.is_empty());
        assert_eq!(t.lookup("/bin/tar"), Some(CanonId(0)));
        assert_eq!(t.lookup("/bin/zzz"), None);
        assert_eq!(t.canon_of(0).text, "/bin/tar");
    }

    #[test]
    fn empty_input() {
        let t = merge(&[]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
