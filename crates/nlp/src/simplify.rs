//! Tree simplification (Algorithm 1, stage 5).
//!
//! "We simplify the annotated trees by removing paths without IOC nodes
//! down to the leaves." A node is kept iff it is annotated (IOC, candidate
//! relation verb, or pronoun) or lies on the path from the root to an
//! annotated node. Pruning is a *mark*, not a removal, so node indexes
//! stay stable for later stages.

use crate::dep::DepTree;

/// Marks prunable nodes. Returns the number of pruned nodes.
pub fn simplify(tree: &mut DepTree) -> usize {
    let n = tree.nodes.len();
    if n == 0 {
        return 0;
    }
    let mut keep = vec![false; n];
    for i in 0..n {
        let ann = &tree.nodes[i].ann;
        if ann.is_ioc || ann.relation_verb.is_some() || ann.is_pronoun {
            // Keep the whole root path.
            for j in tree.path_to_root(i) {
                keep[j] = true;
            }
        }
    }
    // Always keep the root so the tree stays navigable.
    keep[tree.root] = true;
    let mut pruned = 0usize;
    for (i, node) in tree.nodes.iter_mut().enumerate() {
        node.ann.pruned = !keep[i];
        if node.ann.pruned {
            pruned += 1;
        }
    }
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{annotate, restore_iocs};
    use crate::depparse::parse;
    use crate::protect::protect;
    use crate::token::tokenize;

    fn prepared(block: &str) -> DepTree {
        let p = protect(block);
        let mut tree = parse(tokenize(&p.text, 0));
        restore_iocs(&mut tree, &p.slots);
        annotate(&mut tree);
        tree
    }

    #[test]
    fn prunes_ioc_free_branches() {
        let mut tree = prepared(
            "After the long and tedious lateral movement stage, /bin/tar read /etc/passwd quickly",
        );
        let pruned = simplify(&mut tree);
        assert!(
            pruned > 0,
            "decorative words must be pruned: {}",
            tree.render()
        );
        // IOC nodes and the relation verb survive.
        for n in &tree.nodes {
            if n.ann.is_ioc || n.ann.relation_verb.is_some() {
                assert!(!n.ann.pruned, "kept: {}", n.token.text);
            }
        }
        // "tedious" is on no IOC path.
        let tedious = tree
            .nodes
            .iter()
            .find(|n| n.token.text == "tedious")
            .unwrap();
        assert!(tedious.ann.pruned);
    }

    #[test]
    fn keeps_root_paths() {
        let mut tree = prepared("the attacker used /bin/tar to read data from /etc/passwd");
        simplify(&mut tree);
        // Every unpruned IOC can still walk to the root through unpruned
        // nodes.
        for i in tree.ioc_nodes() {
            for j in tree.path_to_root(i) {
                assert!(!tree.nodes[j].ann.pruned);
            }
        }
    }

    #[test]
    fn sentence_without_iocs_prunes_almost_everything() {
        let mut tree = prepared("The weather was pleasant throughout the investigation");
        let pruned = simplify(&mut tree);
        assert!(pruned >= tree.nodes.len() - 2);
    }

    #[test]
    fn empty_tree_is_fine() {
        let mut tree = DepTree {
            nodes: Vec::new(),
            root: 0,
        };
        assert_eq!(simplify(&mut tree), 0);
    }
}
