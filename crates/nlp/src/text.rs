//! Block and sentence segmentation (Algorithm 1, stages 1–2).
//!
//! "We segment an input OSCTI article into natural blocks. We then segment
//! a block into sentences." Sentence segmentation runs on *protected* text
//! (IOCs already replaced by a dummy word), so dots inside IOCs can no
//! longer break sentences — the paper's motivation for IOC protection.

/// A half-open byte span into some source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Start byte (inclusive).
    pub start: usize,
    /// End byte (exclusive).
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// Slices the source text.
    pub fn slice<'t>(&self, text: &'t str) -> &'t str {
        &text[self.start..self.end]
    }

    /// Span length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Splits a document into natural blocks: runs of non-blank lines.
/// Bullet markers (`- `, `* `, `• `, `1. )` etc.) start a new block, so
/// each list item is treated as its own unit, matching how OSCTI reports
/// enumerate steps.
pub fn segment_blocks(doc: &str) -> Vec<Span> {
    let mut blocks = Vec::new();
    let mut cur_start: Option<usize> = None;
    let mut offset = 0usize;
    for line in doc.split_inclusive('\n') {
        let trimmed = line.trim();
        let is_blank = trimmed.is_empty();
        let is_bullet = is_bullet_line(trimmed);
        if is_blank {
            if let Some(s) = cur_start.take() {
                blocks.push(Span::new(s, offset));
            }
        } else if is_bullet {
            if let Some(s) = cur_start.take() {
                blocks.push(Span::new(s, offset));
            }
            cur_start = Some(offset);
        } else if cur_start.is_none() {
            cur_start = Some(offset);
        }
        offset += line.len();
    }
    if let Some(s) = cur_start {
        blocks.push(Span::new(s, offset));
    }
    // Trim whitespace (and bullet markers) off each span.
    blocks
        .into_iter()
        .filter_map(|sp| trim_span(doc, sp))
        .collect()
}

fn is_bullet_line(trimmed: &str) -> bool {
    if let Some(rest) = trimmed
        .strip_prefix("- ")
        .or_else(|| trimmed.strip_prefix("* "))
        .or_else(|| trimmed.strip_prefix("• "))
    {
        return !rest.is_empty();
    }
    // Numbered bullets: "1. ", "2) ".
    let digits: String = trimmed.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return false;
    }
    let rest = &trimmed[digits.len()..];
    rest.starts_with(". ") || rest.starts_with(") ")
}

fn trim_span(doc: &str, sp: Span) -> Option<Span> {
    let text = sp.slice(doc);
    let l = text.len() - text.trim_start().len();
    let r = text.len() - text.trim_end().len();
    let mut start = sp.start + l;
    let end = sp.end - r;
    if start >= end {
        return None;
    }
    // Strip a bullet marker.
    let inner = &doc[start..end];
    for marker in ["- ", "* ", "• "] {
        if let Some(rest) = inner.strip_prefix(marker) {
            start += marker.len();
            let extra = rest.len() - rest.trim_start().len();
            start += extra;
            break;
        }
    }
    let inner = &doc[start..end];
    let digits: String = inner.chars().take_while(|c| c.is_ascii_digit()).collect();
    if !digits.is_empty() {
        let rest = &inner[digits.len()..];
        if rest.starts_with(". ") || rest.starts_with(") ") {
            start += digits.len() + 2;
        }
    }
    if start >= end {
        None
    } else {
        Some(Span::new(start, end))
    }
}

/// Abbreviations that do not end a sentence.
const ABBREVIATIONS: &[&str] = &[
    "e.g", "i.e", "etc", "vs", "cf", "mr", "mrs", "dr", "prof", "fig", "no", "al", "inc", "corp",
    "ltd", "st", "jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep", "sept", "oct", "nov",
    "dec", "approx",
];

/// Splits a (protected) block into sentences.
///
/// A sentence boundary is `.`/`!`/`?` followed by whitespace and an
/// uppercase letter, digit, or end-of-block — unless the preceding word is
/// a known abbreviation or a single capital (initials).
pub fn segment_sentences(block: &str) -> Vec<Span> {
    let bytes = block.as_bytes();
    let mut spans = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '.' || c == '!' || c == '?' {
            // Collect any run of closers (.", .), …).
            let mut j = i + 1;
            while j < bytes.len() && matches!(bytes[j] as char, '"' | '\'' | ')' | ']') {
                j += 1;
            }
            let at_end = j >= bytes.len();
            let followed_by_break = at_end
                || ((bytes[j] as char).is_whitespace() && {
                    let rest = block[j..].trim_start();
                    rest.is_empty()
                        || rest.starts_with(crate::protect::DUMMY)
                        || rest.chars().next().is_some_and(|n| {
                            n.is_uppercase()
                                || n.is_ascii_digit()
                                || n == '/'
                                || n == '"'
                                || n == '\''
                                || n == '('
                        })
                });
            let abbreviation = c == '.' && {
                let before = &block[start..i];
                let word = before
                    .rsplit(|ch: char| ch.is_whitespace())
                    .next()
                    .unwrap_or("");
                let w = word.trim_matches(|ch: char| !ch.is_alphanumeric() && ch != '.');
                let lower = w.to_ascii_lowercase();
                ABBREVIATIONS.contains(&lower.trim_end_matches('.'))
                    || (w.len() == 1 && w.chars().all(|ch| ch.is_uppercase()))
            };
            if followed_by_break && !abbreviation {
                let end = j;
                if let Some(sp) = nonempty_trimmed(block, start, end) {
                    spans.push(sp);
                }
                // Skip whitespace to the next sentence start.
                let mut k = j;
                while k < bytes.len() && (bytes[k] as char).is_whitespace() {
                    k += 1;
                }
                start = k;
                i = k;
                continue;
            }
        }
        i += 1;
    }
    if let Some(sp) = nonempty_trimmed(block, start, block.len()) {
        spans.push(sp);
    }
    spans
}

fn nonempty_trimmed(text: &str, start: usize, end: usize) -> Option<Span> {
    if start >= end {
        return None;
    }
    let slice = &text[start..end];
    let l = slice.len() - slice.trim_start().len();
    let r = slice.len() - slice.trim_end().len();
    let (s, e) = (start + l, end - r);
    if s >= e {
        None
    } else {
        Some(Span::new(s, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(doc: &str) -> Vec<String> {
        segment_blocks(doc)
            .into_iter()
            .map(|s| s.slice(doc).to_string())
            .collect()
    }

    fn sentences(block: &str) -> Vec<String> {
        segment_sentences(block)
            .into_iter()
            .map(|s| s.slice(block).to_string())
            .collect()
    }

    #[test]
    fn blank_lines_split_blocks() {
        let doc = "First paragraph here.\nStill first.\n\nSecond paragraph.\n";
        let b = blocks(doc);
        assert_eq!(b.len(), 2);
        assert!(b[0].starts_with("First"));
        assert!(b[1].starts_with("Second"));
    }

    #[test]
    fn bullets_become_blocks() {
        let doc = "Steps:\n- download the payload\n- execute it\n1. persist\n";
        let b = blocks(doc);
        assert_eq!(b.len(), 4);
        assert_eq!(b[1], "download the payload");
        assert_eq!(b[3], "persist");
    }

    #[test]
    fn empty_doc_and_whitespace_only() {
        assert!(blocks("").is_empty());
        assert!(blocks("  \n\n  \n").is_empty());
    }

    #[test]
    fn simple_sentence_split() {
        let s = sentences("The attacker used something. It wrote data to something. Done!");
        assert_eq!(
            s,
            vec![
                "The attacker used something.",
                "It wrote data to something.",
                "Done!"
            ]
        );
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = sentences("Tools (e.g. tar) were used. Next sentence.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("e.g. tar"));
    }

    #[test]
    fn decimals_do_not_split() {
        // digit '.' digit — the following char is not whitespace.
        let s = sentences("The file was 3.5 MB in size. It was uploaded.");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn question_and_quote_closers() {
        let s = sentences("Was it malicious? Yes. \"It was.\" The end.");
        assert_eq!(s.len(), 4);
        assert_eq!(s[2], "\"It was.\"");
    }

    #[test]
    fn sentence_starting_with_path_like_token() {
        // Protected text never starts sentences with '/', but raw text
        // (tests, diagnostics) can.
        let s = sentences("The step completed. /bin/bzip2 read the file.");
        assert_eq!(s.len(), 2);
        assert!(s[1].starts_with("/bin/bzip2"));
    }

    #[test]
    fn spans_are_offsets_into_block() {
        let block = "Alpha beta. Gamma delta.";
        let spans = segment_sentences(block);
        assert_eq!(spans[0], Span::new(0, 11));
        assert_eq!(spans[1].slice(block), "Gamma delta.");
        assert_eq!(spans[1].len(), 12);
        assert!(!spans[1].is_empty());
    }

    #[test]
    fn single_initial_does_not_split() {
        let s = sentences("Agent J. Smith reported the intrusion. Confirmed.");
        assert_eq!(s.len(), 2);
    }
}
