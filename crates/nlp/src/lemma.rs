//! Rule-based lemmatizer.
//!
//! Relation verbs are stored lemmatized (paper: "the selected verb (after
//! lemmatization)"), so inflected report prose ("wrote", "reading",
//! "connects") maps onto the canonical lexicon forms.

use crate::verbs::is_known_verb;

/// Irregular past/participle forms → lemma.
const IRREGULAR: &[(&str, &str)] = &[
    ("wrote", "write"),
    ("written", "write"),
    ("read", "read"),
    ("sent", "send"),
    ("stole", "steal"),
    ("stolen", "steal"),
    ("ran", "run"),
    ("took", "take"),
    ("taken", "take"),
    ("got", "get"),
    ("gotten", "get"),
    ("began", "begin"),
    ("begun", "begin"),
    ("made", "make"),
    ("found", "find"),
    ("came", "come"),
    ("went", "go"),
    ("gone", "go"),
    ("saw", "see"),
    ("seen", "see"),
    ("chose", "choose"),
    ("chosen", "choose"),
    ("hid", "hide"),
    ("hidden", "hide"),
    ("built", "build"),
    ("held", "hold"),
    ("kept", "keep"),
    ("bought", "buy"),
    ("brought", "bring"),
    ("left", "leave"),
    ("led", "lead"),
    ("put", "put"),
    ("set", "set"),
    ("dropped", "drop"),
    ("was", "be"),
    ("were", "be"),
    ("been", "be"),
    ("is", "be"),
    ("are", "be"),
    ("has", "have"),
    ("had", "have"),
    ("did", "do"),
    ("does", "do"),
];

/// Lemmatizes a (possibly inflected) word. Strategy:
/// 1. lowercase;
/// 2. irregular table;
/// 3. suffix stripping for `-ing` / `-ed` / `-ies` / `-es` / `-s`,
///    validating candidate stems against the verb lexicon where possible
///    (so `using` → `use`, `running` → `run`, `creating` → `create`).
pub fn lemmatize(word: &str) -> String {
    let w = word.to_lowercase();
    if let Some((_, lemma)) = IRREGULAR.iter().find(|(form, _)| *form == w) {
        return (*lemma).to_string();
    }
    // -ing
    if let Some(stem) = w.strip_suffix("ing") {
        if stem.len() >= 2 {
            if let Some(l) = best_stem(stem) {
                return l;
            }
        }
    }
    // -ed
    if let Some(stem) = w.strip_suffix("ed") {
        if stem.len() >= 2 {
            if let Some(l) = best_stem(stem) {
                return l;
            }
            // `-ied` → `y` (copied → copy).
            if let Some(st) = w.strip_suffix("ied") {
                let cand = format!("{st}y");
                if is_known_verb(&cand) {
                    return cand;
                }
            }
        }
    }
    // -ies → -y (queries → query)
    if let Some(stem) = w.strip_suffix("ies") {
        let cand = format!("{stem}y");
        if is_known_verb(&cand) {
            return cand;
        }
    }
    // -es (matches → match, accesses → access)
    if let Some(stem) = w.strip_suffix("es") {
        if is_known_verb(stem) {
            return stem.to_string();
        }
    }
    // -s (reads → read)
    if let Some(stem) = w.strip_suffix('s') {
        if !stem.is_empty() && !stem.ends_with('s') && is_known_verb(stem) {
            return stem.to_string();
        }
    }
    w
}

/// Tries stem variants for `-ing`/`-ed` stripping: the raw stem, the stem
/// plus `e`, and the stem with an undoubled final consonant.
fn best_stem(stem: &str) -> Option<String> {
    if is_known_verb(stem) {
        return Some(stem.to_string());
    }
    let with_e = format!("{stem}e");
    if is_known_verb(&with_e) {
        return Some(with_e);
    }
    let chars: Vec<char> = stem.chars().collect();
    if chars.len() >= 2 && chars[chars.len() - 1] == chars[chars.len() - 2] {
        let undoubled: String = chars[..chars.len() - 1].iter().collect();
        if is_known_verb(&undoubled) {
            return Some(undoubled);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irregulars() {
        assert_eq!(lemmatize("wrote"), "write");
        assert_eq!(lemmatize("Written"), "write");
        assert_eq!(lemmatize("read"), "read");
        assert_eq!(lemmatize("sent"), "send");
        assert_eq!(lemmatize("ran"), "run");
        assert_eq!(lemmatize("was"), "be");
    }

    #[test]
    fn ing_forms() {
        assert_eq!(lemmatize("reading"), "read");
        assert_eq!(lemmatize("using"), "use");
        assert_eq!(lemmatize("running"), "run");
        assert_eq!(lemmatize("creating"), "create");
        assert_eq!(lemmatize("connecting"), "connect");
        assert_eq!(lemmatize("dropping"), "drop");
        assert_eq!(lemmatize("leveraging"), "leverage");
        assert_eq!(lemmatize("scanning"), "scan");
        assert_eq!(lemmatize("copying"), "copy");
    }

    #[test]
    fn ed_forms() {
        assert_eq!(lemmatize("connected"), "connect");
        assert_eq!(lemmatize("used"), "use");
        assert_eq!(lemmatize("downloaded"), "download");
        assert_eq!(lemmatize("leaked"), "leak");
        assert_eq!(lemmatize("executed"), "execute");
        assert_eq!(lemmatize("copied"), "copy");
        assert_eq!(lemmatize("compressed"), "compress");
    }

    #[test]
    fn s_forms() {
        assert_eq!(lemmatize("reads"), "read");
        assert_eq!(lemmatize("writes"), "write");
        assert_eq!(lemmatize("connects"), "connect");
        assert_eq!(lemmatize("queries"), "query");
        assert_eq!(lemmatize("accesses"), "access");
    }

    #[test]
    fn unknown_words_pass_through() {
        assert_eq!(lemmatize("attacker"), "attacker");
        assert_eq!(lemmatize("passwords"), "passwords"); // noun, not in verb lexicon
        assert_eq!(lemmatize("Something"), "something");
    }
}
