//! Coreference resolution (Algorithm 1, stage 6).
//!
//! "Across all trees of all sentences within a block, we resolve the
//! coreference nodes for the same IOC by checking their POS tags and
//! dependencies, and create connections between the nodes in the trees."
//!
//! Two resolution mechanisms:
//!
//! * **pronouns** (`it`, `they`, …): resolved to the most *agentive* IOC
//!   of the preceding sentence — an IOC that acted as subject, or as the
//!   direct object of an instrumental verb ("the attacker used **X** to
//!   …" makes X the acting tool) — falling back to the nearest preceding
//!   IOC mention;
//! * **definite NPs** (`the tar file`, `the tool`, `the image`): resolved
//!   to the nearest preceding IOC whose type is compatible with the head
//!   noun.

use crate::dep::{DepLabel, DepTree};
use crate::ioc::{Ioc, IocType};
use crate::lemma::lemmatize;
use crate::pos::PosTag;
use crate::verbs;

/// Head nouns of definite NPs that can corefer with an IOC, with the IOC
/// types they may resolve to.
pub fn compatible_types(head_noun: &str) -> Option<&'static [IocType]> {
    const FILEISH: &[IocType] = &[IocType::FilePath, IocType::FileName];
    const HOSTISH: &[IocType] = &[
        IocType::Ip,
        IocType::IpSubnet,
        IocType::Domain,
        IocType::Url,
    ];
    match head_noun {
        "file" | "archive" | "image" | "document" | "script" | "binary" | "payload"
        | "executable" | "dropper" | "sample" | "backdoor" => Some(FILEISH),
        "tool" | "utility" | "process" | "program" | "cracker" | "malware" => Some(FILEISH),
        "host" | "server" | "address" | "domain" | "site" | "c2" | "destination" => Some(HOSTISH),
        _ => None,
    }
}

/// Candidate antecedent with an agentivity rank (lower = better).
#[derive(Debug, Clone)]
struct Antecedent {
    ioc: Ioc,
    rank: u8,
    order: usize,
}

/// Collects antecedent candidates from one tree, ranked:
/// 0 = subject IOC, 1 = instrument-object IOC, 2 = any other IOC.
fn candidates_of(tree: &DepTree, upto_offset: Option<usize>) -> Vec<Antecedent> {
    let mut out = Vec::new();
    for (i, node) in tree.nodes.iter().enumerate() {
        let Some(ioc) = node.token.ioc.clone() else {
            continue;
        };
        if let Some(limit) = upto_offset {
            if node.token.start >= limit {
                continue;
            }
        }
        let rank = match node.label {
            DepLabel::Nsubj | DepLabel::NsubjPass => 0,
            DepLabel::Dobj => {
                // Object of an instrumental verb is the acting tool.
                let head_is_instrument = node.head.is_some_and(|h| {
                    tree.nodes[h].pos == PosTag::Verb
                        && verbs::is_instrument_verb(&lemmatize(&tree.nodes[h].token.lower()))
                });
                if head_is_instrument {
                    1
                } else {
                    2
                }
            }
            DepLabel::Appos => {
                // Apposition inherits its host's role.
                let host = node.head;
                match host.map(|h| tree.nodes[h].label) {
                    Some(DepLabel::Nsubj) | Some(DepLabel::NsubjPass) => 0,
                    Some(DepLabel::Dobj) => 1,
                    _ => 2,
                }
            }
            _ => 2,
        };
        out.push(Antecedent {
            ioc,
            rank,
            order: node.token.start,
        });
        let _ = i;
    }
    out
}

/// Resolves coreference for tree `idx` against all earlier trees of the
/// same block (and earlier tokens of the same tree). Sets
/// `ann.coref` on resolved pronoun / definite-NP nodes. Returns the
/// number of resolutions.
pub fn resolve(trees: &mut [DepTree], idx: usize) -> usize {
    let mut resolved = 0usize;
    // Gather mention sites first to appease the borrow checker.
    let sites: Vec<(usize, Option<&'static [IocType]>)> = trees[idx]
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(i, n)| {
            if n.ann.pruned || !n.ann.is_pronoun || n.token.ioc.is_some() {
                return None;
            }
            // A definite NP site constrains antecedent types by its head
            // noun; a true pronoun accepts any IOC type. Skip NPs already
            // named by an IOC apposition/compound child.
            let has_ioc_child = trees[idx]
                .nodes
                .iter()
                .any(|m| m.head == Some(i) && m.token.ioc.is_some());
            if has_ioc_child {
                return None;
            }
            if n.pos == PosTag::Noun {
                // Product NPs of creation verbs name the artifact being
                // produced ("wrote the compressed archive to X"): they
                // corefer *forward* to the prep object, never backward.
                if n.label == DepLabel::Dobj {
                    let creation = n.head.is_some_and(|h| {
                        matches!(
                            lemmatize(&trees[idx].nodes[h].token.lower()).as_str(),
                            "write" | "create" | "drop" | "save" | "store" | "append"
                        )
                    });
                    if creation {
                        return None;
                    }
                }
                compatible_types(&n.token.lower()).map(|types| (i, Some(types)))
            } else {
                Some((i, None))
            }
        })
        .collect();

    for (node_idx, type_filter) in sites {
        let mention_offset = trees[idx].nodes[node_idx].token.start;
        // Candidates: previous trees (all), current tree (before mention).
        let mut cands: Vec<(usize, Antecedent)> = Vec::new();
        for (t, tree) in trees.iter().enumerate().take(idx + 1) {
            let limit = if t == idx { Some(mention_offset) } else { None };
            for a in candidates_of(tree, limit) {
                cands.push((t, a));
            }
        }
        if let Some(types) = type_filter {
            // Definite NPs never corefer within their own clause — "the
            // tar file" in "leveraged /bin/bzip2 to compress the tar
            // file" refers back, not to the instrument beside it.
            cands.retain(|(t, a)| *t < idx && types.contains(&a.ioc.ty));
            // Nearest compatible mention wins (recency).
            cands.sort_by_key(|(t, a)| (std::cmp::Reverse(*t), std::cmp::Reverse(a.order)));
        } else {
            // Pronoun: prefer the immediately preceding sentence, then
            // agentivity rank, then recency.
            cands.sort_by_key(|(t, a)| {
                let sentence_distance = idx - t; // 0 = same sentence
                let pref = if sentence_distance == 1 { 0 } else { 1 };
                (pref, a.rank, std::cmp::Reverse(a.order))
            });
        }
        if let Some((_, best)) = cands.first() {
            trees[idx].nodes[node_idx].ann.coref = Some(best.ioc.clone());
            resolved += 1;
        }
    }
    resolved
}

/// Resolves coreference across all trees of a block, in order (the
/// Algorithm 1 line 13 loop).
pub fn resolve_block(trees: &mut [DepTree]) -> usize {
    (0..trees.len()).map(|i| resolve(trees, i)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{annotate, restore_iocs};
    use crate::depparse::parse;
    use crate::protect::protect;
    use crate::simplify::simplify;
    use crate::text::segment_sentences;
    use crate::token::tokenize;

    fn block_trees(block: &str) -> Vec<DepTree> {
        let p = protect(block);
        segment_sentences(&p.text)
            .into_iter()
            .map(|sp| {
                let mut tree = parse(tokenize(sp.slice(&p.text), sp.start));
                restore_iocs(&mut tree, &p.slots);
                annotate(&mut tree);
                simplify(&mut tree);
                tree
            })
            .collect()
    }

    #[test]
    fn it_resolves_to_instrument_of_previous_sentence() {
        // Fig. 2: "…used /bin/tar to read…from /etc/passwd. It wrote…"
        let mut trees = block_trees(
            "As a first step, the attacker used /bin/tar to read user credentials \
             from /etc/passwd. It wrote the gathered information to a file /tmp/upload.tar.",
        );
        assert_eq!(trees.len(), 2);
        let n = resolve_block(&mut trees);
        assert!(n >= 1);
        let it = trees[1]
            .nodes
            .iter()
            .find(|n| n.token.text == "It")
            .expect("pronoun present");
        assert_eq!(
            it.ann.coref.as_ref().map(|i| i.text.as_str()),
            Some("/bin/tar"),
            "`It` must resolve to the instrument, not the last IOC"
        );
    }

    #[test]
    fn definite_np_resolves_by_type() {
        let mut trees = block_trees(
            "The attacker downloaded /tmp/cracker from the C2 server. \
             Then the attacker executed the tool against /etc/shadow.",
        );
        resolve_block(&mut trees);
        let tool = trees[1]
            .nodes
            .iter()
            .find(|n| n.token.text == "tool")
            .expect("definite NP present");
        assert_eq!(
            tool.ann.coref.as_ref().map(|i| i.text.as_str()),
            Some("/tmp/cracker")
        );
    }

    #[test]
    fn host_np_prefers_network_iocs() {
        let mut trees = block_trees(
            "The malware wrote /tmp/payload.bin and beaconed to 203.0.113.66. \
             The implant then sent data to the server.",
        );
        resolve_block(&mut trees);
        let server = trees[1]
            .nodes
            .iter()
            .find(|n| n.token.text == "server")
            .expect("definite NP present");
        assert_eq!(
            server.ann.coref.as_ref().map(|i| i.text.as_str()),
            Some("203.0.113.66"),
            "type compatibility must skip the file IOC"
        );
    }

    #[test]
    fn no_candidates_no_resolution() {
        let mut trees = block_trees("It started raining. The file was empty.");
        let n = resolve_block(&mut trees);
        assert_eq!(n, 0);
    }

    #[test]
    fn np_with_ioc_apposition_not_resolved() {
        // "the curl utility (/usr/bin/curl)" already names its IOC.
        let mut trees = block_trees(
            "The attacker downloaded /tmp/x.sh from 10.0.0.9. \
             The attacker leveraged the curl utility (/usr/bin/curl) to read the data.",
        );
        resolve_block(&mut trees);
        let utility = trees[1]
            .nodes
            .iter()
            .find(|n| n.token.text == "utility")
            .expect("noun present");
        assert!(
            utility.ann.coref.is_none(),
            "appos already supplies the IOC"
        );
    }
}
