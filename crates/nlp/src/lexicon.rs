//! Closed-class word lists for the POS tagger.
//!
//! The paper's pipeline is *unsupervised*: no trained models. Tagging
//! relies on closed-class lexicons (these lists), a verb lexicon
//! ([`crate::verbs`]), and shape/suffix heuristics ([`crate::pos`]).

/// Determiners.
pub const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "its", "his", "her", "their", "our",
    "your", "my", "each", "every", "some", "any", "no", "all", "both", "another", "such",
];

/// Pronouns (coreference candidates among them).
pub const PRONOUNS: &[&str] = &[
    "it",
    "he",
    "she",
    "they",
    "them",
    "him",
    "itself",
    "himself",
    "themselves",
    "which",
    "who",
    "whom",
    "what",
    "one",
];

/// Prepositions / particles tagged `ADP`.
pub const PREPOSITIONS: &[&str] = &[
    "of", "in", "on", "at", "to", "from", "by", "with", "into", "onto", "over", "under", "via",
    "through", "against", "after", "before", "during", "between", "among", "within", "without",
    "about", "across", "toward", "towards", "upon", "off", "as", "for", "behind", "inside",
    "outside", "near", "back",
];

/// Coordinating conjunctions.
pub const CCONJ: &[&str] = &["and", "or", "but", "nor", "yet"];

/// Subordinating conjunctions / complementizers.
pub const SCONJ: &[&str] = &[
    "that", "because", "since", "while", "when", "where", "if", "although", "though", "once",
    "until", "unless", "whereas", "so",
];

/// Auxiliary / copular verbs.
pub const AUXILIARIES: &[&str] = &[
    "is", "are", "was", "were", "be", "been", "being", "am", "has", "have", "had", "having", "do",
    "does", "did", "will", "would", "can", "could", "may", "might", "must", "shall", "should",
];

/// Common adverbs (beyond the `-ly` heuristic).
pub const ADVERBS: &[&str] = &[
    "then",
    "now",
    "here",
    "there",
    "thus",
    "hence",
    "also",
    "again",
    "first",
    "next",
    "later",
    "often",
    "never",
    "always",
    "already",
    "still",
    "just",
    "very",
    "too",
    "not",
    "further",
    "back",
    "instead",
    "meanwhile",
    "afterwards",
    "subsequently",
];

/// Common adjectives seen in threat reports (participles handled by the
/// tagger's post-determiner rule).
pub const ADJECTIVES: &[&str] = &[
    "malicious",
    "sensitive",
    "valuable",
    "remote",
    "local",
    "important",
    "suspicious",
    "compromised",
    "encrypted",
    "compressed",
    "hidden",
    "new",
    "final",
    "first",
    "second",
    "third",
    "last",
    "multiple",
    "several",
    "various",
    "clear",
    "main",
    "initial",
    "following",
    "same",
    "zipped",
    "gathered",
];

/// Whether `word` (lowercased) is in a slice.
pub fn contains(list: &[&str], word: &str) -> bool {
    list.contains(&word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership() {
        assert!(contains(DETERMINERS, "the"));
        assert!(contains(PRONOUNS, "it"));
        assert!(contains(PREPOSITIONS, "from"));
        assert!(contains(AUXILIARIES, "was"));
        assert!(contains(CCONJ, "and"));
        assert!(!contains(DETERMINERS, "tar"));
    }

    #[test]
    fn lists_are_lowercase() {
        for list in [
            DETERMINERS,
            PRONOUNS,
            PREPOSITIONS,
            CCONJ,
            SCONJ,
            AUXILIARIES,
            ADVERBS,
            ADJECTIVES,
        ] {
            for w in list {
                assert_eq!(*w, w.to_lowercase(), "lexicon entries must be lowercase");
            }
        }
    }
}
