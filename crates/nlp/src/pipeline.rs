//! The threat behavior extraction pipeline (Algorithm 1, end to end).

use crate::annotate::{annotate, restore_iocs};
use crate::coref::resolve_block;
use crate::dep::DepTree;
use crate::depparse::parse;
use crate::graph::ThreatBehaviorGraph;
use crate::ioc::{normalize_defang, Ioc};
use crate::merge::{self, CanonId, IocTable};
use crate::protect::protect;
use crate::relext::{self, CanonMap, Triplet};
use crate::simplify::simplify;
use crate::text::{segment_blocks, segment_sentences};
use crate::token::tokenize;
use std::time::{Duration, Instant};

/// Wall-clock duration of each pipeline stage — the data behind the
/// "lightweight pipeline" claim (experiment E7).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Block + sentence segmentation.
    pub segmentation: Duration,
    /// IOC recognition + protection.
    pub protection: Duration,
    /// Tokenization + dependency parsing + protection removal.
    pub parsing: Duration,
    /// Annotation + simplification.
    pub annotation: Duration,
    /// Coreference resolution.
    pub coref: Duration,
    /// IOC scan & merge.
    pub merge: Duration,
    /// Relation extraction.
    pub relext: Duration,
    /// Graph construction.
    pub construct: Duration,
    /// End-to-end.
    pub total: Duration,
}

impl StageTimings {
    /// Sum of the per-stage durations (excludes `total`, which is
    /// measured independently and so may be slightly larger).
    pub fn stage_sum(&self) -> Duration {
        self.segmentation
            + self.protection
            + self.parsing
            + self.annotation
            + self.coref
            + self.merge
            + self.relext
            + self.construct
    }
}

/// Result of one extraction run.
#[derive(Debug, Clone)]
pub struct ExtractionResult {
    /// The threat behavior graph.
    pub graph: ThreatBehaviorGraph,
    /// Canonical IOC table (stage 7 output).
    pub iocs: IocTable,
    /// All extracted triplets, in document order.
    pub triplets: Vec<Triplet>,
    /// Dependency trees per block (for diagnostics / tests).
    pub trees: Vec<Vec<DepTree>>,
    /// Per-stage timings.
    pub timings: StageTimings,
}

/// The extraction pipeline. Stateless apart from the shared compiled IOC
/// rule set; `extract` can be called repeatedly.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreatExtractor;

impl ThreatExtractor {
    /// Creates an extractor.
    pub fn new() -> ThreatExtractor {
        ThreatExtractor
    }

    /// Runs Algorithm 1 over an OSCTI document.
    pub fn extract(&self, document: &str) -> ExtractionResult {
        let t_total = Instant::now();
        let mut timings = StageTimings::default();

        let normalized = normalize_defang(document);

        // Stage 1: block segmentation.
        let t = Instant::now();
        let block_spans = segment_blocks(&normalized);
        timings.segmentation += t.elapsed();

        let mut all_block_trees: Vec<Vec<DepTree>> = Vec::with_capacity(block_spans.len());
        let mut mentions: Vec<Ioc> = Vec::new();

        for span in &block_spans {
            let block = span.slice(&normalized);

            // Stage 2: IOC recognition + protection.
            let t = Instant::now();
            let protected = protect(block);
            timings.protection += t.elapsed();

            // Stage 2b: sentence segmentation (on protected text).
            let t = Instant::now();
            let sentence_spans = segment_sentences(&protected.text);
            timings.segmentation += t.elapsed();

            let mut trees: Vec<DepTree> = Vec::with_capacity(sentence_spans.len());
            for ss in sentence_spans {
                // Stage 3: parse, then remove protection.
                let t = Instant::now();
                let tokens = tokenize(ss.slice(&protected.text), ss.start);
                let mut tree = parse(tokens);
                restore_iocs(&mut tree, &protected.slots);
                timings.parsing += t.elapsed();

                // Stages 4–5: annotate + simplify.
                let t = Instant::now();
                annotate(&mut tree);
                simplify(&mut tree);
                timings.annotation += t.elapsed();

                trees.push(tree);
            }

            // Stage 6: coreference within the block.
            let t = Instant::now();
            resolve_block(&mut trees);
            timings.coref += t.elapsed();

            for tree in &trees {
                mentions.extend(tree.nodes.iter().filter_map(|n| n.token.ioc.clone()));
            }
            all_block_trees.push(trees);
        }

        // Stage 7: IOC scan & merge.
        let t = Instant::now();
        let table = merge::merge(&mentions);
        let mut canon: CanonMap = CanonMap::new();
        for (i, m) in mentions.iter().enumerate() {
            canon.insert((m.text.clone(), m.ty), table.mention_canon[i]);
        }
        for (ci, c) in table.canon.iter().enumerate() {
            canon.insert((c.text.clone(), c.ty), CanonId(ci));
        }
        timings.merge += t.elapsed();

        // Stage 8: relation extraction, ordered by (block, verb offset).
        let t = Instant::now();
        let mut triplets: Vec<Triplet> = Vec::new();
        for trees in &all_block_trees {
            let mut block_triplets: Vec<Triplet> = trees
                .iter()
                .flat_map(|tree| relext::extract(tree, &canon))
                .collect();
            block_triplets.sort_by_key(|t| t.verb_offset);
            // Cross-sentence duplicates within a block (coref echoes).
            block_triplets.dedup_by(|a, b| {
                a.subject == b.subject && a.verb == b.verb && a.object == b.object
            });
            triplets.extend(block_triplets);
        }
        timings.relext += t.elapsed();

        // Stage 10: graph construction.
        let t = Instant::now();
        let graph = ThreatBehaviorGraph::construct(&table, &triplets);
        timings.construct += t.elapsed();

        timings.total = t_total.elapsed();
        ExtractionResult {
            graph,
            iocs: table,
            triplets,
            trees: all_block_trees,
            timings,
        }
    }
}

/// The verbatim OSCTI text of the paper's Fig. 2 data-leakage example.
pub const FIG2_OSCTI_TEXT: &str = "\
After the lateral movement stage, the attacker attempts to steal valuable \
assets from the host. This stage mainly involves the behaviors of local and \
remote file system scanning activities, copying and compressing of important \
files, and transferring the files to its C2 host. The details of the data \
leakage attack are as follows. As a first step, the attacker used /bin/tar \
to read user credentials from /etc/passwd. It wrote the gathered information \
to a file /tmp/upload.tar. Then, the attacker leveraged /bin/bzip2 utility \
to compress the tar file. /bin/bzip2 read from /tmp/upload.tar and wrote to \
/tmp/upload.tar.bz2. After compression, the attacker used Gnu Privacy Guard \
(GnuPG) tool to encrypt the zipped file, which corresponds to the launched \
process /usr/bin/gpg reading from /tmp/upload.tar.bz2. /usr/bin/gpg then \
wrote the sensitive information to /tmp/upload. Finally, the attacker \
leveraged the curl utility (/usr/bin/curl) to read the data from \
/tmp/upload. He leaked the gathered sensitive information back to the \
attacker C2 host by using /usr/bin/curl to connect to 192.168.29.128.";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_extraction_end_to_end() {
        let result = ThreatExtractor::new().extract(FIG2_OSCTI_TEXT);
        let g = &result.graph;

        // Fig. 2 lists 9 IOCs.
        let expected_nodes = [
            "/bin/tar",
            "/etc/passwd",
            "/tmp/upload.tar",
            "/bin/bzip2",
            "/tmp/upload.tar.bz2",
            "/usr/bin/gpg",
            "/tmp/upload",
            "/usr/bin/curl",
            "192.168.29.128",
        ];
        for n in expected_nodes {
            assert!(g.node_by_text(n).is_some(), "missing node {n}\n{g}");
        }

        // The 8 edges of the Fig. 2 threat behavior graph.
        let expected_edges = [
            ("/bin/tar", "read", "/etc/passwd"),
            ("/bin/tar", "write", "/tmp/upload.tar"),
            ("/bin/bzip2", "read", "/tmp/upload.tar"),
            ("/bin/bzip2", "write", "/tmp/upload.tar.bz2"),
            ("/usr/bin/gpg", "read", "/tmp/upload.tar.bz2"),
            ("/usr/bin/gpg", "write", "/tmp/upload"),
            ("/usr/bin/curl", "read", "/tmp/upload"),
            ("/usr/bin/curl", "connect", "192.168.29.128"),
        ];
        for (s, v, o) in expected_edges {
            assert!(
                g.edges.iter().any(|e| {
                    g.nodes[e.src].text == s && e.verb == v && g.nodes[e.dst].text == o
                }),
                "missing edge ({s}, {v}, {o})\n{g}"
            );
        }

        // Sequence numbers follow the narrative order for the core chain.
        let seq_of = |s: &str, v: &str, o: &str| {
            g.edges
                .iter()
                .find(|e| g.nodes[e.src].text == s && e.verb == v && g.nodes[e.dst].text == o)
                .map(|e| e.seq)
                .unwrap()
        };
        assert!(
            seq_of("/bin/tar", "read", "/etc/passwd")
                < seq_of("/bin/tar", "write", "/tmp/upload.tar")
        );
        assert!(
            seq_of("/bin/bzip2", "write", "/tmp/upload.tar.bz2")
                < seq_of("/usr/bin/gpg", "read", "/tmp/upload.tar.bz2")
        );
        assert!(
            seq_of("/usr/bin/curl", "read", "/tmp/upload")
                < seq_of("/usr/bin/curl", "connect", "192.168.29.128")
        );
    }

    #[test]
    fn timings_populated() {
        let result = ThreatExtractor::new().extract(FIG2_OSCTI_TEXT);
        assert!(result.timings.total > Duration::ZERO);
        assert!(result.timings.stage_sum() <= result.timings.total * 2);
        // "Lightweight": well under a second for a one-page report.
        assert!(result.timings.total < Duration::from_secs(2));
    }

    #[test]
    fn empty_document() {
        let result = ThreatExtractor::new().extract("");
        assert_eq!(result.graph.node_count(), 0);
        assert_eq!(result.graph.edge_count(), 0);
        assert!(result.triplets.is_empty());
    }

    #[test]
    fn ioc_free_document() {
        let result = ThreatExtractor::new()
            .extract("The quarterly report shows steady progress. Nothing suspicious happened.");
        assert_eq!(result.graph.node_count(), 0);
        assert_eq!(result.graph.edge_count(), 0);
    }

    #[test]
    fn defanged_document() {
        let result = ThreatExtractor::new()
            .extract("The dropper /tmp/stage2 connected to 203[.]0[.]113[.]66 for tasking.");
        assert!(result.graph.node_by_text("203.0.113.66").is_some());
        assert!(result.graph.edges.iter().any(|e| e.verb == "connect"));
    }

    #[test]
    fn bullet_blocks_isolated() {
        let doc = "The attack proceeded as follows:\n\
                   - /usr/bin/wget downloaded /tmp/payload.bin from 203.0.113.66.\n\
                   - /tmp/payload.bin wrote to /etc/cron.d/backdoor.\n";
        let result = ThreatExtractor::new().extract(doc);
        let g = &result.graph;
        assert!(g.node_by_text("/tmp/payload.bin").is_some(), "{g}");
        assert!(
            g.edges
                .iter()
                .any(|e| e.verb == "write" && g.nodes[e.dst].text == "/etc/cron.d/backdoor"),
            "{g}"
        );
    }
}
