//! Hashed character-n-gram word vectors.
//!
//! Stage 7 merges IOC mentions using "both the character-level overlap and
//! the word vector similarities" (§II-C). spaCy supplies pretrained
//! vectors; offline we build subword vectors in the fastText spirit:
//! each character trigram hashes into a fixed number of buckets with a
//! hash-derived sign, and the word vector is the L2-normalized bucket sum.
//! Strings sharing many trigrams (e.g. `/tmp/upload.tar` and
//! `upload.tar`) land close in cosine space.

/// Vector dimensionality.
pub const DIM: usize = 64;

/// A dense word vector.
pub type Vector = [f32; DIM];

/// FNV-1a 64-bit hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Embeds a string from its character trigrams (with boundary markers).
pub fn embed(word: &str) -> Vector {
    let mut v = [0f32; DIM];
    let padded: Vec<char> = std::iter::once('^')
        .chain(word.chars())
        .chain(std::iter::once('$'))
        .collect();
    if padded.len() < 3 {
        return v;
    }
    let mut buf = String::with_capacity(12);
    for tri in padded.windows(3) {
        buf.clear();
        buf.extend(tri);
        let h = fnv1a(buf.as_bytes());
        let bucket = (h % DIM as u64) as usize;
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[bucket] += sign;
    }
    // Opposite-sign trigrams can cancel to the zero vector on short
    // words; fall back to a single whole-word bucket so every non-empty
    // word has a unit embedding.
    if v.iter().all(|x| *x == 0.0) {
        let h = fnv1a(word.as_bytes());
        v[(h % DIM as u64) as usize] = 1.0;
    }
    normalize(&mut v);
    v
}

fn normalize(v: &mut Vector) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Cosine similarity of two vectors (both already normalized ⇒ dot
/// product). Returns 0 for zero vectors.
pub fn cosine(a: &Vector, b: &Vector) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Convenience: cosine similarity of two strings.
pub fn similarity(a: &str, b: &str) -> f32 {
    cosine(&embed(a), &embed(b))
}

/// Character-trigram Jaccard overlap — the "character-level overlap" leg
/// of the merge criterion.
pub fn char_overlap(a: &str, b: &str) -> f64 {
    let grams = |s: &str| -> std::collections::HashSet<String> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() < 3 {
            return std::iter::once(s.to_string()).collect();
        }
        chars.windows(3).map(|w| w.iter().collect()).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.intersection(&gb).count() as f64;
    let union = ga.union(&gb).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_strings_have_similarity_one() {
        let s = similarity("/tmp/upload.tar", "/tmp/upload.tar");
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn related_paths_are_closer_than_unrelated() {
        let related = similarity("/tmp/upload.tar", "upload.tar");
        let unrelated = similarity("/tmp/upload.tar", "/etc/passwd");
        assert!(
            related > unrelated + 0.2,
            "related={related} unrelated={unrelated}"
        );
    }

    #[test]
    fn overlap_behaviour() {
        assert!((char_overlap("abcdef", "abcdef") - 1.0).abs() < 1e-9);
        assert_eq!(char_overlap("abc", "xyz"), 0.0);
        let partial = char_overlap("/tmp/upload.tar", "/tmp/upload.tar.bz2");
        assert!(partial > 0.5 && partial < 1.0);
    }

    #[test]
    fn short_strings_do_not_panic() {
        assert!(
            similarity("a", "b").abs() < 1e-9,
            "sub-trigram words are zero vectors"
        );
        assert_eq!(char_overlap("", ""), 1.0);
        assert!(char_overlap("ab", "ab") > 0.99);
    }

    proptest! {
        #[test]
        fn cosine_bounded(a in "[a-z/.]{0,20}", b in "[a-z/.]{0,20}") {
            let s = similarity(&a, &b);
            prop_assert!((-1.0001..=1.0001).contains(&s));
        }

        #[test]
        fn overlap_symmetric(a in "[a-z/.]{0,15}", b in "[a-z/.]{0,15}") {
            prop_assert_eq!(char_overlap(&a, &b).to_bits(), char_overlap(&b, &a).to_bits());
        }

        #[test]
        fn self_similarity_maximal(a in "[a-z/.]{3,20}") {
            prop_assert!((similarity(&a, &a) - 1.0).abs() < 1e-4);
            prop_assert!((char_overlap(&a, &a) - 1.0).abs() < 1e-9);
        }
    }
}
