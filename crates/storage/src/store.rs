//! The combined audit store: one parsed log ingested into both backends.
//!
//! Mirrors §II-B: "For PostgreSQL, ThreatRaptor stores system entities and
//! system events in tables. For Neo4j, ThreatRaptor stores system entities
//! as nodes and system events as edges. Indexes are created on key
//! attributes to speed up the search. Furthermore, … the Causality
//! Preserved Reduction technique [is used] to merge excessive events."

use crate::cpr;
use crate::graphdb::GraphDb;
use crate::relational::{Column, Database, Table, Value};
use std::sync::Arc;
use threatraptor_audit::entity::{Entity, EntityId};
use threatraptor_audit::event::{Event, EventType};
use threatraptor_audit::parser::ParsedLog;

/// Table name for process entities.
pub const TABLE_PROCESS: &str = "process";
/// Table name for file entities.
pub const TABLE_FILE: &str = "file";
/// Table name for network-connection entities.
pub const TABLE_NETWORK: &str = "network";
/// Table name for events.
pub const TABLE_EVENT: &str = "event";

/// The three entity tables of a store, behind shared handles so one
/// physical copy can serve many shards (entity ids are global, so every
/// shard of one log sees identical entity tables — replicating them per
/// shard is pure waste at production entity counts).
#[derive(Debug, Clone)]
pub struct EntityTables {
    /// Process table (indexed on `id`).
    pub process: Arc<Table>,
    /// File table (indexed on `id` and `name`).
    pub file: Arc<Table>,
    /// Network-connection table (indexed on `id` and `dstip`).
    pub network: Arc<Table>,
}

impl EntityTables {
    /// Builds all three entity tables (with their indexes) once.
    pub fn build(entities: &[Entity]) -> EntityTables {
        EntityTables {
            process: Arc::new(AuditStore::build_process_table(entities)),
            file: Arc::new(AuditStore::build_file_table(entities)),
            network: Arc::new(AuditStore::build_network_table(entities)),
        }
    }

    /// The table registered under `name`, or a panic for non-entity names.
    pub fn table(&self, name: &str) -> &Table {
        match name {
            TABLE_PROCESS => &self.process,
            TABLE_FILE => &self.file,
            TABLE_NETWORK => &self.network,
            other => panic!("`{other}` is not an entity table"),
        }
    }
}

/// The combined store over relational and graph backends.
#[derive(Debug, Clone)]
pub struct AuditStore {
    /// Relational backend (PostgreSQL role).
    pub db: Database,
    /// Graph backend (Neo4j role).
    pub graph: GraphDb,
    /// All entities, indexed by [`EntityId`]. Shared (not replicated)
    /// across the shards of a [`crate::sharded::ShardedStore`].
    pub entities: Arc<[Entity]>,
    /// Stored events (CPR-reduced when enabled), in time order. Row `i` of
    /// the event table corresponds to `events[i]`.
    pub events: Vec<Event>,
    /// CPR statistics of the ingest (before == after when CPR disabled).
    pub reduction: cpr::ReductionStats,
}

impl AuditStore {
    /// Ingests a parsed log, optionally applying CPR first.
    pub fn ingest(log: &ParsedLog, use_cpr: bool) -> AuditStore {
        let (events, reduction) = cpr::reduce_if(&log.events, use_cpr);
        Self::from_events(&log.entities, events, reduction)
    }

    /// Builds a store over an already reduced (or deliberately unreduced)
    /// event stream. No further CPR is applied; `reduction` is recorded
    /// as-is.
    pub fn from_events(
        entities: &[Entity],
        events: Vec<Event>,
        reduction: cpr::ReductionStats,
    ) -> AuditStore {
        let tables = EntityTables::build(entities);
        Self::from_shared(Arc::from(entities), &tables, events, reduction)
    }

    /// Builds a store over an already reduced event stream, sharing the
    /// entity array and entity tables with the caller (and any sibling
    /// shards). Only the event table and the graph are built here — this
    /// is the shard-construction path of
    /// [`crate::sharded::ShardedStore`], which reduces once globally,
    /// builds the entity tables once, and then partitions the events.
    pub fn from_shared(
        entities: Arc<[Entity]>,
        tables: &EntityTables,
        events: Vec<Event>,
        reduction: cpr::ReductionStats,
    ) -> AuditStore {
        let mut db = Database::new();
        db.add_shared_table(Arc::clone(&tables.process));
        db.add_shared_table(Arc::clone(&tables.file));
        db.add_shared_table(Arc::clone(&tables.network));
        db.add_table(Self::build_event_table(&events));

        let graph = GraphDb::build(entities.len(), &events);

        AuditStore {
            db,
            graph,
            entities,
            events,
            reduction,
        }
    }

    /// Shared handles to this store's entity tables.
    pub fn entity_tables(&self) -> EntityTables {
        EntityTables {
            process: self.db.shared_table(TABLE_PROCESS),
            file: self.db.shared_table(TABLE_FILE),
            network: self.db.shared_table(TABLE_NETWORK),
        }
    }

    fn build_process_table(entities: &[Entity]) -> Table {
        let mut t = Table::new(
            TABLE_PROCESS,
            vec![
                Column::new("id"),
                Column::new("pid"),
                Column::new("exename"),
                Column::new("cmdline"),
                Column::new("owner"),
                Column::new("start_time"),
            ],
        );
        for e in entities {
            if let Entity::Process(p) = e {
                t.insert(vec![
                    Value::from(p.id.0),
                    Value::from(p.pid),
                    Value::str(&p.exename),
                    Value::str(&p.cmdline),
                    Value::str(&p.owner),
                    Value::from(p.start_time),
                ]);
            }
        }
        t.create_btree_index("id");
        t
    }

    fn build_file_table(entities: &[Entity]) -> Table {
        let mut t = Table::new(TABLE_FILE, vec![Column::new("id"), Column::new("name")]);
        for e in entities {
            if let Entity::File(f) = e {
                t.insert(vec![Value::from(f.id.0), Value::str(&f.name)]);
            }
        }
        t.create_btree_index("id");
        t.create_hash_index("name");
        t
    }

    fn build_network_table(entities: &[Entity]) -> Table {
        let mut t = Table::new(
            TABLE_NETWORK,
            vec![
                Column::new("id"),
                Column::new("srcip"),
                Column::new("srcport"),
                Column::new("dstip"),
                Column::new("dstport"),
                Column::new("protocol"),
            ],
        );
        for e in entities {
            if let Entity::Network(n) = e {
                t.insert(vec![
                    Value::from(n.id.0),
                    Value::str(&n.src_ip),
                    Value::from(n.src_port),
                    Value::str(&n.dst_ip),
                    Value::from(n.dst_port),
                    Value::str(&n.protocol),
                ]);
            }
        }
        t.create_btree_index("id");
        t.create_hash_index("dstip");
        t
    }

    fn build_event_table(events: &[Event]) -> Table {
        let mut t = Table::new(
            TABLE_EVENT,
            vec![
                Column::new("id"),
                Column::new("subject"),
                Column::new("op"),
                Column::new("object"),
                Column::new("start"),
                Column::new("end"),
                Column::new("bytes"),
                Column::new("type"),
            ],
        );
        for ev in events.iter() {
            let ty = match ev.event_type() {
                EventType::File => "file",
                EventType::Process => "process",
                EventType::Network => "network",
            };
            t.insert(vec![
                Value::from(ev.id.0),
                Value::from(ev.subject.0),
                Value::str(ev.op.name()),
                Value::from(ev.object.0),
                Value::from(ev.start),
                Value::from(ev.end),
                Value::from(ev.bytes),
                Value::str(ty),
            ]);
        }
        t.create_hash_index("op");
        t.create_btree_index("subject");
        t.create_btree_index("object");
        t.create_btree_index("start");
        t
    }

    /// Entity accessor.
    #[inline]
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// Stored event by table row position.
    #[inline]
    pub fn event_at(&self, pos: usize) -> &Event {
        &self.events[pos]
    }

    /// Number of stored events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// The table name that holds entities of the given kind.
    pub fn entity_table(kind: threatraptor_audit::entity::EntityKind) -> &'static str {
        match kind {
            threatraptor_audit::entity::EntityKind::Process => TABLE_PROCESS,
            threatraptor_audit::entity::EntityKind::File => TABLE_FILE,
            threatraptor_audit::entity::EntityKind::Network => TABLE_NETWORK,
        }
    }
}

/// Position-addressed access to stored events and entities — the part of
/// a store that result evaluation needs. Implemented by [`AuditStore`]
/// (positions are table rows) and by
/// [`crate::sharded::ShardedStore`] (positions are global, spanning all
/// shards), so [`HuntResult`]-style consumers work over either.
///
/// [`HuntResult`]: https://docs.rs/threatraptor-engine
pub trait EventLookup {
    /// Event stored at `pos`.
    fn event_at(&self, pos: usize) -> &Event;

    /// Number of stored events.
    fn event_count(&self) -> usize;

    /// Entity by id.
    fn entity(&self, id: EntityId) -> &Entity;
}

impl EventLookup for AuditStore {
    fn event_at(&self, pos: usize) -> &Event {
        AuditStore::event_at(self, pos)
    }

    fn event_count(&self) -> usize {
        AuditStore::event_count(self)
    }

    fn entity(&self, id: EntityId) -> &Entity {
        AuditStore::entity(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::Predicate;
    use threatraptor_audit::sim::scenario::ScenarioBuilder;

    fn store(cpr: bool) -> AuditStore {
        let sc = ScenarioBuilder::new().seed(42).target_events(2_000).build();
        AuditStore::ingest(&sc.log, cpr)
    }

    #[test]
    fn tables_cover_all_entities_and_events() {
        let s = store(false);
        let n_proc = s.db.table(TABLE_PROCESS).len();
        let n_file = s.db.table(TABLE_FILE).len();
        let n_net = s.db.table(TABLE_NETWORK).len();
        assert_eq!(n_proc + n_file + n_net, s.entities.len());
        assert_eq!(s.db.table(TABLE_EVENT).len(), s.events.len());
        assert_eq!(s.reduction.before, s.reduction.after);
    }

    #[test]
    fn cpr_shrinks_event_table() {
        let plain = store(false);
        let reduced = store(true);
        assert!(reduced.event_count() < plain.event_count());
        assert!(
            reduced.reduction.factor() > 1.2,
            "bursty workloads must compress"
        );
        assert_eq!(reduced.db.table(TABLE_EVENT).len(), reduced.event_count());
        // Graph edge count matches stored events.
        assert_eq!(reduced.graph.edge_count(), reduced.event_count());
    }

    #[test]
    fn event_rows_align_with_events_vec() {
        let s = store(true);
        let t = s.db.table(TABLE_EVENT);
        for pos in [0usize, s.events.len() / 2, s.events.len() - 1] {
            let row = t.row(pos);
            assert_eq!(
                row[t.col("id")].as_int().unwrap() as u32,
                s.events[pos].id.0
            );
            assert_eq!(row[t.col("op")].as_str().unwrap(), s.events[pos].op.name());
        }
    }

    #[test]
    fn indexed_op_lookup_matches_scan() {
        let s = store(false);
        let t = s.db.table(TABLE_EVENT);
        let via_index = t.select(&Predicate::eq("op", "read"));
        let expected = s.events.iter().filter(|e| e.op.name() == "read").count();
        assert_eq!(via_index.len(), expected);
    }

    #[test]
    fn entity_table_mapping() {
        use threatraptor_audit::entity::EntityKind;
        assert_eq!(AuditStore::entity_table(EntityKind::Process), TABLE_PROCESS);
        assert_eq!(AuditStore::entity_table(EntityKind::File), TABLE_FILE);
        assert_eq!(AuditStore::entity_table(EntityKind::Network), TABLE_NETWORK);
    }

    #[test]
    fn ground_truth_events_survive_cpr() {
        let sc = ScenarioBuilder::new().seed(42).target_events(2_000).build();
        let s = AuditStore::ingest(&sc.log, true);
        let gt = sc.ground_truth("data_leakage");
        assert_eq!(gt.len(), 8);
        for id in gt {
            assert!(
                s.events.iter().any(|e| e.id == id),
                "hunted event {id} lost by CPR"
            );
        }
    }
}
