//! Streaming ingest: a live, continuously queryable audit store.
//!
//! The batch [`ShardedStore`] is build-once: the full log must exist
//! before the first hunt can run. Production threat hunting works the
//! other way around — audit data is collected *continuously* and hunts
//! run while collection is in flight. This module turns the batch store
//! into a live one:
//!
//! * a [`StreamingStore`] holds a list of immutable **sealed** shards
//!   (ordinary [`AuditStore`]s behind [`Arc`]) plus one mutable **open
//!   window** at the ingest frontier;
//! * [`StreamingStore::append`] feeds event batches into an
//!   [`IncrementalReducer`], which applies Causality-Preserved Reduction
//!   incrementally — merging only against the open window while evolving
//!   exactly the state the batch reducer would, so the stored stream is
//!   byte-identical to batch ingestion of the same log;
//! * a [`SealPolicy`] (by open-window event count and/or time span)
//!   decides when to freeze the open window. Sealing takes only the
//!   *stable prefix* — closed CPR outputs below the reducer's watermark —
//!   so a merge run is never split across a seal boundary;
//! * [`StreamingStore::snapshot`] assembles a regular [`ShardedStore`]
//!   from Arc-cloned sealed shards plus a freshly indexed open shard.
//!   The snapshot is an immutable epoch view: hunts run against it with
//!   the unmodified sharded engine while appends continue, and further
//!   appends never mutate an already-taken snapshot.
//!
//! Global invariants are inherited from the batch path: entity ids are
//! assigned by the parser in first-appearance order and never change, and
//! global event positions are the concatenation of sealed shards plus the
//! open window — exactly the positions batch ingestion assigns.

use crate::cpr::{IncrementalReducer, ReductionStats};
use crate::sharded::{ShardedStore, StreamFrontier};
use crate::store::{AuditStore, EntityTables};
use threatraptor_audit::entity::Entity;
use threatraptor_audit::event::Event;
use threatraptor_audit::parser::LogChunk;
use threatraptor_obs::{Counter, Gauge, Registry};
use threatraptor_sync::atomic::{AtomicU64, Ordering};
use threatraptor_sync::Arc;

/// When to freeze the open window into an immutable shard. Both limits
/// are optional; with neither set, sealing is manual only.
#[derive(Debug, Clone, Copy, Default)]
pub struct SealPolicy {
    /// Seal when the open window holds at least this many (reduced)
    /// events.
    pub max_open_events: Option<usize>,
    /// Seal when the open window spans at least this much log time
    /// (max start − min start, in the log's time unit).
    pub max_open_span: Option<u64>,
}

impl SealPolicy {
    /// Manual sealing only.
    pub fn manual() -> SealPolicy {
        SealPolicy::default()
    }

    /// Seal every `n` open events.
    pub fn events(n: usize) -> SealPolicy {
        SealPolicy {
            max_open_events: Some(n.max(1)),
            max_open_span: None,
        }
    }

    /// Seal every `span` of log time.
    pub fn span(span: u64) -> SealPolicy {
        SealPolicy {
            max_open_events: None,
            max_open_span: Some(span.max(1)),
        }
    }

    /// Adds an event-count limit to this policy.
    pub fn or_events(mut self, n: usize) -> SealPolicy {
        self.max_open_events = Some(n.max(1));
        self
    }

    fn triggered(&self, open_len: usize, open_span: Option<(u64, u64)>) -> bool {
        if self.max_open_events.is_some_and(|n| open_len >= n) {
            return true;
        }
        match (self.max_open_span, open_span) {
            (Some(max), Some((lo, hi))) => hi - lo >= max,
            _ => false,
        }
    }
}

/// When to merge adjacent sealed shards back together.
///
/// Small seal thresholds keep snapshot cost low (it is proportional to
/// the open window), but grow the sealed-shard list without bound — and
/// with it every hunt's per-shard scan fan-out. Compaction merges
/// adjacent sealed shards by pure concatenation: global event positions
/// are the concatenation of sealed shards plus the open window, so
/// merging neighbors changes *where* a position lives, never *what* it
/// holds — snapshots before and after compaction are byte-identical,
/// position for position.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactionPolicy {
    /// Merge the smallest adjacent sealed pair whenever the sealed shard
    /// count exceeds this. `None` disables compaction.
    pub max_sealed_shards: Option<usize>,
}

impl CompactionPolicy {
    /// Never compact (the historical behavior).
    pub fn disabled() -> CompactionPolicy {
        CompactionPolicy::default()
    }

    /// Keep at most `n` sealed shards (clamped to ≥ 1).
    pub fn max_shards(n: usize) -> CompactionPolicy {
        CompactionPolicy {
            max_sealed_shards: Some(n.max(1)),
        }
    }

    fn triggered(&self, sealed_shards: usize) -> bool {
        self.max_sealed_shards.is_some_and(|n| sealed_shards > n)
    }
}

/// What one append did: how much arrived, and whether it tripped a seal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Raw events appended by this call.
    pub appended: usize,
    /// New entities registered by this call.
    pub new_entities: usize,
    /// Shards sealed by this call (auto-sealing under the policy).
    pub sealed: usize,
}

/// Registry handles for stream-level telemetry; attached once via
/// [`StreamingStore::attach_metrics`] so the hot append path pays one
/// `Option` check plus a few relaxed atomics, never a registry lookup.
#[derive(Debug, Clone)]
struct StreamObs {
    /// `storage_appends_total`: append calls.
    appends: Arc<Counter>,
    /// `storage_raw_events_total`: raw events fed in, pre-CPR.
    raw_events: Arc<Counter>,
    /// `storage_seals_total`: shards frozen.
    seals: Arc<Counter>,
    /// `storage_compactions_total`: adjacent sealed-shard merges.
    compactions: Arc<Counter>,
    /// `storage_open_events`: current open-window size (reduced).
    open_events: Arc<Gauge>,
    /// `storage_sealed_shards`: current sealed shard count.
    sealed_shards: Arc<Gauge>,
    /// `storage_stored_events`: total stored events (post-CPR).
    stored_events: Arc<Gauge>,
    /// `storage_entities`: entities registered so far.
    entities: Arc<Gauge>,
}

/// Cached shared entity state, rebuilt only when entities have grown.
#[derive(Debug, Clone)]
struct SharedEntities {
    len: usize,
    entities: Arc<[Entity]>,
    tables: EntityTables,
}

/// The detached ingredients of a snapshot, extracted under any lock the
/// caller holds and assembled (indexed) afterwards with
/// [`SnapshotParts::build`]. See [`StreamingStore::snapshot_parts`].
#[derive(Debug, Clone)]
pub struct SnapshotParts {
    sealed: Vec<Arc<AuditStore>>,
    entities: Arc<[Entity]>,
    tables: EntityTables,
    open_events: Vec<Event>,
    raw_appended: usize,
    sealed_events: usize,
    watermark: u64,
}

impl SnapshotParts {
    /// Builds the snapshot: indexes the open window into a fresh shard
    /// and assembles the sharded view. The expensive half of
    /// [`StreamingStore::snapshot`]; needs no access to the live store.
    pub fn build(self) -> ShardedStore {
        let frontier = StreamFrontier {
            sealed_events: self.sealed_events,
            watermark: self.watermark,
            open_min_start: self.open_events.iter().map(|e| e.start).min(),
        };
        let open_stats = ReductionStats {
            before: self.open_events.len(),
            after: self.open_events.len(),
        };
        let open = Arc::new(AuditStore::from_shared(
            Arc::clone(&self.entities),
            &self.tables,
            self.open_events,
            open_stats,
        ));
        let total = self.sealed_events + open.event_count();
        let mut shards = self.sealed;
        shards.push(open);
        ShardedStore::from_parts(
            shards,
            self.entities,
            self.tables,
            ReductionStats {
                before: self.raw_appended,
                after: total,
            },
        )
        .with_frontier(frontier)
    }
}

/// An appendable audit store: immutable sealed shards plus one open
/// window with incremental CPR at the frontier.
#[derive(Debug)]
pub struct StreamingStore {
    use_cpr: bool,
    policy: SealPolicy,
    compaction: CompactionPolicy,
    /// All entities seen so far, in global id order (append-only).
    entities: Vec<Entity>,
    /// Shared entity array/tables as of `shared.len` entities; refreshed
    /// lazily so repeated seals/snapshots without entity growth reuse one
    /// physical copy.
    shared: Option<SharedEntities>,
    reducer: IncrementalReducer,
    sealed: Vec<Arc<AuditStore>>,
    sealed_events: usize,
    /// Monotone change counter: bumped on every append and seal. Atomic
    /// behind a shared handle ([`StreamingStore::epoch_handle`]) so
    /// change detection costs one load — no store lock — even when the
    /// store itself lives behind a lock.
    epoch: Arc<AtomicU64>,
    /// Telemetry handles, when attached.
    obs: Option<StreamObs>,
}

impl StreamingStore {
    /// An empty streaming store.
    pub fn new(use_cpr: bool, policy: SealPolicy) -> StreamingStore {
        StreamingStore {
            use_cpr,
            policy,
            compaction: CompactionPolicy::disabled(),
            entities: Vec::new(),
            shared: None,
            reducer: IncrementalReducer::new(use_cpr),
            sealed: Vec::new(),
            sealed_events: 0,
            epoch: Arc::new(AtomicU64::new(0)),
            obs: None,
        }
    }

    /// Sets the sealed-shard compaction policy (disabled by default).
    pub fn with_compaction(mut self, compaction: CompactionPolicy) -> StreamingStore {
        self.compaction = compaction;
        self
    }

    /// The compaction policy.
    pub fn compaction(&self) -> CompactionPolicy {
        self.compaction
    }

    /// Attaches stream telemetry to `registry`: `storage_*` counters
    /// and gauges updated on every append and seal. Gauges are synced
    /// to the store's current state immediately.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        let obs = StreamObs {
            appends: registry.counter("storage_appends_total"),
            raw_events: registry.counter("storage_raw_events_total"),
            seals: registry.counter("storage_seals_total"),
            compactions: registry.counter("storage_compactions_total"),
            open_events: registry.gauge("storage_open_events"),
            sealed_shards: registry.gauge("storage_sealed_shards"),
            stored_events: registry.gauge("storage_stored_events"),
            entities: registry.gauge("storage_entities"),
        };
        self.obs = Some(obs);
        self.sync_gauges();
    }

    /// Updates the state gauges to match the store. Cheap (four
    /// relaxed stores); no-op when telemetry is not attached.
    fn sync_gauges(&self) {
        if let Some(obs) = &self.obs {
            obs.open_events.set(self.reducer.open_len() as i64);
            obs.sealed_shards.set(self.sealed.len() as i64);
            obs.stored_events.set(self.event_count() as i64);
            obs.entities.set(self.entities.len() as i64);
        }
    }

    /// Appends a parsed chunk (new entities + events), then auto-seals
    /// while the policy is triggered.
    ///
    /// `new_entities` must continue the global id sequence (the chunked
    /// parser feed guarantees this); events may reference any entity
    /// registered so far.
    pub fn append(&mut self, chunk: &LogChunk) -> AppendOutcome {
        self.append_batch(&chunk.new_entities, &chunk.events)
    }

    /// [`StreamingStore::append`] over bare slices.
    pub fn append_batch(&mut self, new_entities: &[Entity], events: &[Event]) -> AppendOutcome {
        for (offset, entity) in new_entities.iter().enumerate() {
            assert_eq!(
                entity.id().index(),
                self.entities.len() + offset,
                "appended entities must continue the global id sequence"
            );
        }
        self.entities.extend_from_slice(new_entities);
        if !new_entities.is_empty() {
            // Rebuild the shared entity tables on the (write-side) append
            // path, so read-side snapshots always hit the cache instead
            // of rebuilding under their lock.
            self.refresh_shared();
        }
        debug_assert!(events
            .iter()
            .all(|e| e.subject.index() < self.entities.len()
                && e.object.index() < self.entities.len()));
        self.reducer.append(events);
        // ordering: Release publishes the appended data to epoch-handle
        // readers — an Acquire load that sees the new value also sees
        // the events written above. Pairs with the Acquire in epoch().
        self.epoch.fetch_add(1, Ordering::Release);

        let mut sealed = 0;
        while self
            .policy
            .triggered(self.reducer.open_len(), self.reducer.open_span())
        {
            if self.seal().is_none() {
                // Nothing stable to seal (one giant open run): stop
                // rather than spin; the next append will retry.
                break;
            }
            sealed += 1;
        }
        if let Some(obs) = &self.obs {
            obs.appends.inc();
            obs.raw_events.add(events.len() as u64);
        }
        self.sync_gauges();
        AppendOutcome {
            appended: events.len(),
            new_entities: new_entities.len(),
            sealed,
        }
    }

    /// Freezes the stable prefix of the open window into an immutable
    /// shard. Returns `None` (and seals nothing) when no output is
    /// stable yet — open CPR runs stay open so a merge is never split
    /// across a seal boundary.
    pub fn seal(&mut self) -> Option<Arc<AuditStore>> {
        let stable = self.reducer.take_stable();
        if stable.is_empty() {
            return None;
        }
        self.refresh_shared();
        let shared = self.shared.as_ref().expect("refreshed above");
        let stats = ReductionStats {
            before: stable.len(),
            after: stable.len(),
        };
        let shard = Arc::new(AuditStore::from_shared(
            Arc::clone(&shared.entities),
            &shared.tables,
            stable,
            stats,
        ));
        self.sealed_events += shard.event_count();
        self.sealed.push(Arc::clone(&shard));
        self.maybe_compact();
        // ordering: Release, same publish contract as the append-path
        // bump — the sealed shard must be visible before the new epoch.
        self.epoch.fetch_add(1, Ordering::Release);
        if let Some(obs) = &self.obs {
            obs.seals.inc();
        }
        self.sync_gauges();
        Some(shard)
    }

    /// Merges the smallest adjacent sealed pair while the compaction
    /// policy is triggered. Concatenation only: the merged shard holds
    /// the same events at the same global positions, so every invariant
    /// a snapshot relies on — positions, sealed-prefix immutability, the
    /// sealed-event count — is preserved by construction.
    fn maybe_compact(&mut self) {
        while self.compaction.triggered(self.sealed.len()) {
            let i = (0..self.sealed.len() - 1)
                .min_by_key(|&i| self.sealed[i].event_count() + self.sealed[i + 1].event_count())
                .expect("compaction triggers only above one shard");
            let (a, b) = (&self.sealed[i], &self.sealed[i + 1]);
            let mut events = Vec::with_capacity(a.event_count() + b.event_count());
            events.extend_from_slice(&a.events);
            events.extend_from_slice(&b.events);
            let stats = ReductionStats {
                before: events.len(),
                after: events.len(),
            };
            let shared = self
                .shared
                .as_ref()
                .expect("sealed shards imply shared entity state");
            let merged = Arc::new(AuditStore::from_shared(
                Arc::clone(&shared.entities),
                &shared.tables,
                events,
                stats,
            ));
            self.sealed[i] = merged;
            self.sealed.remove(i + 1);
            if let Some(obs) = &self.obs {
                obs.compactions.inc();
            }
        }
    }

    /// An immutable epoch view over everything appended so far: all
    /// sealed shards (shared, zero-copy) plus the open window built into
    /// a fresh indexed shard. Hunts run against the snapshot with the
    /// ordinary sharded engine; appends after this call never affect it.
    ///
    /// Cost is proportional to the open-window size (bounded by the seal
    /// policy), not to the total store size. Callers holding a lock
    /// around the store can split the cost with
    /// [`StreamingStore::snapshot_parts`]: the parts extraction is the
    /// cheap in-lock half, [`SnapshotParts::build`] the expensive
    /// out-of-lock half.
    pub fn snapshot(&self) -> ShardedStore {
        self.snapshot_parts().build()
    }

    /// Extracts everything a snapshot needs from the live store: Arc
    /// clones of the sealed shards, the shared entity state, and the
    /// open window's event list (the incremental reducer's simulated
    /// completion — O(open window), no index builds). The returned parts
    /// are fully detached: [`SnapshotParts::build`] — which pays for
    /// indexing the open window — can run with no lock held while
    /// appends continue.
    pub fn snapshot_parts(&self) -> SnapshotParts {
        let (entities, tables) = self.shared_parts();
        SnapshotParts {
            sealed: self.sealed.clone(),
            entities,
            tables,
            open_events: self.reducer.visible(),
            raw_appended: self.reducer.appended(),
            sealed_events: self.sealed_events,
            watermark: self.reducer.watermark(),
        }
    }

    /// Number of sealed (immutable) shards.
    pub fn sealed_count(&self) -> usize {
        self.sealed.len()
    }

    /// Events currently in the open window (after reduction).
    pub fn open_len(&self) -> usize {
        self.reducer.open_len()
    }

    /// Total stored events: sealed plus open window.
    pub fn event_count(&self) -> usize {
        self.sealed_events + self.reducer.open_len()
    }

    /// All entities registered so far.
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// Stream-global reduction statistics (raw appended vs stored).
    pub fn reduction(&self) -> ReductionStats {
        ReductionStats {
            before: self.reducer.appended(),
            after: self.event_count(),
        }
    }

    /// Whether CPR is applied at the frontier.
    pub fn uses_cpr(&self) -> bool {
        self.use_cpr
    }

    /// The seal policy.
    pub fn policy(&self) -> SealPolicy {
        self.policy
    }

    /// Monotone change counter: differs between two observations iff an
    /// append or seal happened in between.
    pub fn epoch(&self) -> u64 {
        // ordering: Acquire pairs with the Release bumps in append()
        // and seal(): observing a bump implies seeing the data behind
        // it. Relaxed would let a reader act on an epoch whose chunk it
        // cannot yet see.
        self.epoch.load(Ordering::Acquire)
    }

    /// A shared handle on the epoch counter. Holders observe epoch bumps
    /// with a single atomic load, without going through whatever lock
    /// guards the store — the cheap change-detection primitive an
    /// event-driven dispatcher polls between notifications.
    pub fn epoch_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.epoch)
    }

    /// Shared entity array/tables for the current entity set, reusing the
    /// cache when entities have not grown (no `&mut self`: snapshot must
    /// work under a read lock).
    fn shared_parts(&self) -> (Arc<[Entity]>, EntityTables) {
        match &self.shared {
            Some(s) if s.len == self.entities.len() => (Arc::clone(&s.entities), s.tables.clone()),
            _ => {
                let entities: Arc<[Entity]> = Arc::from(self.entities.as_slice());
                let tables = EntityTables::build(&entities);
                (entities, tables)
            }
        }
    }

    /// Refreshes the shared-entity cache if entities have grown.
    fn refresh_shared(&mut self) {
        if self
            .shared
            .as_ref()
            .is_none_or(|s| s.len != self.entities.len())
        {
            let (entities, tables) = self.shared_parts();
            self.shared = Some(SharedEntities {
                len: self.entities.len(),
                entities,
                tables,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpr;
    use threatraptor_audit::entity::EntityId;
    use threatraptor_audit::event::{EventId, Operation};
    use threatraptor_audit::parser::ParsedLog;
    use threatraptor_audit::sim::scenario::ScenarioBuilder;

    fn scenario_log(events: usize) -> ParsedLog {
        ScenarioBuilder::new()
            .seed(42)
            .target_events(events)
            .build()
            .log
    }

    /// Replays a parsed log into a streaming store in `chunk`-sized event
    /// batches, registering all entities up front (ids are global either
    /// way; the chunked-feed tests cover incremental entity arrival).
    fn replay(log: &ParsedLog, store: &mut StreamingStore, chunk: usize) {
        store.append_batch(&log.entities, &[]);
        for batch in log.events.chunks(chunk.max(1)) {
            store.append_batch(&[], batch);
        }
    }

    fn assert_stream_parity(log: &ParsedLog, store: &StreamingStore, use_cpr: bool) {
        let snapshot = store.snapshot();
        let (expected, stats) = cpr::reduce_if(&log.events, use_cpr);
        assert_eq!(snapshot.event_count(), expected.len());
        assert_eq!(snapshot.reduction(), stats);
        assert_eq!(store.reduction(), stats);
        for (pos, want) in expected.iter().enumerate() {
            assert_eq!(snapshot.event_at(pos), want, "position {pos}");
        }
    }

    #[test]
    fn chunked_append_matches_batch_ingest() {
        let log = scenario_log(3_000);
        for use_cpr in [true, false] {
            for chunk in [1usize, 7, 256, 100_000] {
                let mut store = StreamingStore::new(use_cpr, SealPolicy::manual());
                replay(&log, &mut store, chunk);
                assert_stream_parity(&log, &store, use_cpr);
            }
        }
    }

    #[test]
    fn sealing_preserves_the_global_stream() {
        let log = scenario_log(3_000);
        for policy in [SealPolicy::events(200), SealPolicy::span(1 << 22)] {
            let mut store = StreamingStore::new(true, policy);
            replay(&log, &mut store, 64);
            assert!(store.sealed_count() > 1, "policy must have sealed");
            assert_stream_parity(&log, &store, true);
        }
    }

    #[test]
    fn seal_never_splits_a_merge_run() {
        // A quiet read burst interrupted by manual seals: batch CPR
        // merges it to one event, and so must chunked append + seal —
        // the seal may only take the stable prefix.
        let ev = |id: u32, start: u64| Event {
            id: EventId(id),
            subject: EntityId(0),
            op: Operation::Read,
            object: EntityId(1),
            start,
            end: start + 2,
            bytes: 10,
            merged: 1,
            tag: None,
        };
        let events: Vec<Event> = (0..6).map(|i| ev(i, u64::from(i) * 10)).collect();
        let entities = scenario_log(50).entities;

        let mut store = StreamingStore::new(true, SealPolicy::manual());
        store.append_batch(&entities, &events[..2]);
        assert!(store.seal().is_none(), "the open run must not seal");
        store.append_batch(&[], &events[2..4]);
        store.seal();
        store.append_batch(&[], &events[4..]);

        let snapshot = store.snapshot();
        let (expected, _) = cpr::reduce(&events);
        assert_eq!(expected.len(), 1);
        assert_eq!(snapshot.event_count(), 1);
        assert_eq!(snapshot.event_at(0), &expected[0]);
        assert_eq!(snapshot.event_at(0).merged, 6);
    }

    #[test]
    fn snapshots_are_immutable_epoch_views() {
        let log = scenario_log(2_000);
        let mut store = StreamingStore::new(true, SealPolicy::events(300));
        let half = log.events.len() / 2;
        store.append_batch(&log.entities, &log.events[..half]);
        let early = store.snapshot();
        let early_count = early.event_count();
        let early_first = early.event_at(0).clone();
        let early_sealed = store.event_count() - store.open_len();
        assert!(early_sealed > 0, "the policy must have sealed by midway");

        store.append_batch(&[], &log.events[half..]);
        let late = store.snapshot();

        // The early snapshot is untouched by later appends, and equals a
        // batch reduction of exactly the half-stream it observed.
        assert_eq!(early.event_count(), early_count);
        assert_eq!(early.event_at(0), &early_first);
        let (expected_half, _) = cpr::reduce(&log.events[..half]);
        assert_eq!(early.event_count(), expected_half.len());
        assert!(late.event_count() > early.event_count());
        // The *sealed* region of the early snapshot is a stable prefix of
        // every later view. (The open window is provisional: a visible
        // open event may still absorb later constituents.)
        for pos in 0..early_sealed {
            assert_eq!(early.event_at(pos), late.event_at(pos), "position {pos}");
        }
    }

    #[test]
    fn auto_seal_bounds_the_open_window() {
        let log = scenario_log(3_000);
        let mut store = StreamingStore::new(true, SealPolicy::events(250));
        replay(&log, &mut store, 50);
        // The open window stays near the threshold: it can exceed it only
        // by what is still unstable (open runs + staged ties).
        assert!(store.sealed_count() >= 2);
        assert!(
            store.open_len() < 250 + 250,
            "open window {} should be bounded by the seal policy",
            store.open_len()
        );
        let counts: usize = store
            .snapshot()
            .shards()
            .iter()
            .map(|s| s.event_count())
            .sum();
        assert_eq!(counts, store.event_count());
    }

    #[test]
    fn epoch_advances_on_append_and_seal() {
        let log = scenario_log(500);
        let mut store = StreamingStore::new(true, SealPolicy::manual());
        let e0 = store.epoch();
        store.append_batch(&log.entities, &log.events[..100]);
        let e1 = store.epoch();
        assert!(e1 > e0);
        store.append_batch(&[], &log.events[100..200]);
        assert!(store.epoch() > e1);
        let before_seal = store.epoch();
        if store.seal().is_some() {
            assert!(store.epoch() > before_seal);
        }
    }

    #[test]
    fn epoch_handle_observes_changes_without_the_store() {
        let log = scenario_log(300);
        let mut store = StreamingStore::new(true, SealPolicy::manual());
        let handle = store.epoch_handle();
        let e0 = handle.load(Ordering::Acquire);
        store.append_batch(&log.entities, &log.events[..100]);
        // The handle sees the bump without touching the store — the
        // change-detection path an event dispatcher uses while the store
        // itself sits behind a lock.
        assert!(handle.load(Ordering::Acquire) > e0);
        assert_eq!(store.epoch(), handle.load(Ordering::Acquire));
    }

    #[test]
    fn sealed_shards_share_one_entity_table_copy() {
        let log = scenario_log(2_000);
        let mut store = StreamingStore::new(true, SealPolicy::events(200));
        replay(&log, &mut store, 100);
        let snapshot = store.snapshot();
        // All entities arrived before the first seal, so every shard —
        // sealed and open — shares the same physical entity tables.
        for shard in snapshot.shards() {
            assert!(std::ptr::eq(
                shard.db.table(crate::store::TABLE_PROCESS) as *const _,
                snapshot.entity_table(crate::store::TABLE_PROCESS) as *const _
            ));
        }
    }

    #[test]
    fn attached_metrics_track_appends_and_seals() {
        let log = scenario_log(2_000);
        let registry = Registry::new();
        let mut store = StreamingStore::new(true, SealPolicy::events(200));
        store.attach_metrics(&registry);
        replay(&log, &mut store, 100);

        let snap = registry.snapshot();
        // One entity-registration append plus one per event chunk.
        let chunks = log.events.chunks(100).len() as u64;
        assert_eq!(snap.counter("storage_appends_total"), Some(1 + chunks));
        assert_eq!(
            snap.counter("storage_raw_events_total"),
            Some(log.events.len() as u64)
        );
        assert_eq!(
            snap.counter("storage_seals_total"),
            Some(store.sealed_count() as u64)
        );
        assert_eq!(
            snap.gauge("storage_open_events"),
            Some(store.open_len() as i64)
        );
        assert_eq!(
            snap.gauge("storage_sealed_shards"),
            Some(store.sealed_count() as i64)
        );
        assert_eq!(
            snap.gauge("storage_stored_events"),
            Some(store.event_count() as i64)
        );
        assert_eq!(
            snap.gauge("storage_entities"),
            Some(store.entities().len() as i64)
        );
    }

    #[test]
    fn compaction_preserves_snapshot_parity() {
        let log = scenario_log(3_000);
        let mut plain = StreamingStore::new(true, SealPolicy::events(100));
        let mut compacted = StreamingStore::new(true, SealPolicy::events(100))
            .with_compaction(CompactionPolicy::max_shards(3));
        replay(&log, &mut plain, 64);
        replay(&log, &mut compacted, 64);
        assert!(
            plain.sealed_count() > 3,
            "the seal policy must fragment the uncompacted store"
        );
        assert!(
            compacted.sealed_count() <= 3,
            "compaction must bound the sealed shard count"
        );
        // Byte-identical, position for position, to the uncompacted
        // stream and to batch reduction of the same log.
        assert_stream_parity(&log, &compacted, true);
        let (a, b) = (plain.snapshot(), compacted.snapshot());
        assert_eq!(a.event_count(), b.event_count());
        for pos in 0..a.event_count() {
            assert_eq!(a.event_at(pos), b.event_at(pos), "position {pos}");
        }
        // Compaction moves no boundary the frontier depends on.
        assert_eq!(a.frontier(), b.frontier());
    }

    #[test]
    fn snapshots_carry_the_stream_frontier() {
        let log = scenario_log(1_000);
        let mut store = StreamingStore::new(true, SealPolicy::events(150));
        replay(&log, &mut store, 64);
        let snap = store.snapshot();
        let frontier = snap
            .frontier()
            .expect("streaming snapshots carry a frontier");
        assert_eq!(
            frontier.sealed_events,
            store.event_count() - store.open_len()
        );
        let open_min = (frontier.sealed_events..snap.event_count())
            .map(|p| snap.event_at(p).start)
            .min();
        assert_eq!(frontier.open_min_start, open_min);
        assert!(frontier.settled_before() <= frontier.watermark);
        // Batch-built stores carry no frontier.
        let batch = ShardedStore::ingest(&log, true, 4);
        assert!(batch.frontier().is_none());
    }

    #[test]
    #[should_panic(expected = "global id sequence")]
    fn entity_id_gaps_are_rejected() {
        let log = scenario_log(200);
        let mut store = StreamingStore::new(true, SealPolicy::manual());
        // Skipping the first entity breaks the id sequence.
        store.append_batch(&log.entities[1..], &[]);
    }
}
