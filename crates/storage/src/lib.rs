//! # threatraptor-storage
//!
//! Storage substrate for the ThreatRaptor reproduction.
//!
//! The paper stores parsed audit data in two backends (§II-B): PostgreSQL
//! (entities and events as tables, "mature indexing mechanisms … suitable
//! for queries that involve many joins and constraints") and Neo4j
//! (entities as nodes, events as edges, "suitable for queries that involve
//! graph pattern search"). Neither is available offline, so this crate
//! provides embedded equivalents that execute the *same logical plans* the
//! paper compiles TBQL into:
//!
//! * [`relational`] — a typed row store with B-tree/hash indexes, a
//!   predicate AST with SQL `LIKE` semantics, and a select-project-join
//!   executor with index selection ([`relational::SqlSelect`] renders to
//!   SQL text for the conciseness experiment);
//! * [`graphdb`] — a property graph over the same data with
//!   variable-length path search (min/max hops, last-hop operation,
//!   time-monotone traversal), the compile target for TBQL path patterns;
//! * [`cpr`] — Causality-Preserved Reduction (Xu et al., CCS'16), the
//!   event-merging technique the paper applies to reduce data size;
//! * [`store`] — [`store::AuditStore`], which ingests a parsed log into
//!   both backends and keeps key attributes indexed;
//! * [`sharded`] — [`sharded::ShardedStore`], which partitions one
//!   globally-reduced log into independent per-time-window shards with
//!   parallel ingestion (the substrate of the concurrent hunt service);
//! * [`stream`] — [`stream::StreamingStore`], the live variant: sealed
//!   immutable shards plus one appendable open window with incremental
//!   CPR at the ingest frontier, snapshotting into ordinary
//!   [`sharded::ShardedStore`] epoch views for hunts under ingest.

pub mod cpr;
pub mod graphdb;
pub mod relational;
pub mod sharded;
pub mod store;
pub mod stream;

pub use relational::{Database, Predicate, SqlSelect, Value};
pub use sharded::{ShardedStore, StreamFrontier};
pub use store::{AuditStore, EntityTables, EventLookup};
pub use stream::{AppendOutcome, CompactionPolicy, SealPolicy, SnapshotParts, StreamingStore};
