//! Sharded audit storage: one logical store partitioned into independent
//! [`AuditStore`] shards.
//!
//! The paper's deployment stores one monolithic log in PostgreSQL+Neo4j;
//! scaling that design to production volumes requires partitioning. A
//! [`ShardedStore`] reduces the event stream **once** (Causality-Preserved
//! Reduction is applied globally, so merge decisions never depend on where
//! a shard boundary falls) and then splits the time-ordered stream into
//! `n` contiguous slices of near-equal size — a time-window partition,
//! since audit streams arrive in time order. Each slice is ingested into a
//! full [`AuditStore`] (relational tables + graph + indexes) on its own
//! scoped thread.
//!
//! Every shard replicates the (small) entity tables, so entity ids are
//! global and identical across shards; only the event data is partitioned.
//! Event *positions* are global: shard `i` holds the contiguous position
//! range `[offset(i), offset(i) + shard(i).event_count())`, and a global
//! position maps back to `(shard, local)` with a binary search over the
//! offsets. Building a sharded store from the same `(log, cpr)` input as a
//! single [`AuditStore`] yields exactly the same events at exactly the
//! same global positions — the invariant the sharded execution engine's
//! parity guarantee rests on.

use crate::cpr::{self, ReductionStats};
use crate::relational::Table;
use crate::store::{AuditStore, EntityTables, EventLookup};
use std::sync::Arc;
use threatraptor_audit::entity::{Entity, EntityId};
use threatraptor_audit::event::Event;
use threatraptor_audit::parser::ParsedLog;

/// Runs `f(0..n)` across at most `workers` scoped threads, each worker
/// taking a contiguous chunk, and returns the results in index order —
/// the fan-out shape shared by shard ingestion here and per-shard scan
/// scatter in the execution engine. `workers <= 1` (or `n <= 1`) runs
/// inline with no thread spawns.
pub fn fan_out<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (lo, hi) = (w * chunk, ((w + 1) * chunk).min(n));
                let f = &f;
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("fan-out worker panicked"))
            .collect()
    })
}

/// Stream provenance of a snapshot, for incremental (delta) standing
/// queries: where the immutable sealed prefix ends and how far the CPR
/// watermark has advanced. Snapshots built from a batch log carry no
/// frontier ([`ShardedStore::frontier`] is `None`) — consumers must then
/// treat the whole store as provisional and fall back to full scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamFrontier {
    /// Global positions `[0, sealed_events)` are sealed: byte-identical
    /// in every later snapshot of the same stream. Positions at or above
    /// it form the open window, which is provisional (an open CPR run
    /// may still absorb later constituents or be re-led).
    pub sealed_events: usize,
    /// The reducer's sealing watermark: every *future* non-final output
    /// of the stream starts at or after this time. `u64::MAX` when CPR
    /// is off (every stored event is final on arrival).
    pub watermark: u64,
    /// Minimum start time over the open window's events (`None` when the
    /// open window is empty). Together with the watermark this bounds the
    /// start of any row that can still appear or change: rows older than
    /// `min(watermark, open_min_start)` are settled for good.
    pub open_min_start: Option<u64>,
}

impl StreamFrontier {
    /// The start time below which no row of this stream can ever again
    /// appear, change, or be re-scanned by a delta poll: the minimum of
    /// the watermark (bounds future outputs) and the open window's
    /// earliest start (bounds re-scanned provisional rows).
    pub fn settled_before(&self) -> u64 {
        self.open_min_start
            .map_or(self.watermark, |lo| lo.min(self.watermark))
    }
}

/// A log partitioned into independent [`AuditStore`] shards by
/// time-window, with globally reduced events and global entity ids.
///
/// Shards are held behind [`Arc`] and share one entity array plus one
/// physical copy of the entity tables (entity ids are global, so the
/// tables are identical): cloning a `ShardedStore`, or assembling one
/// from already-built shards (the streaming snapshot path in
/// [`crate::stream`]), costs reference counts, not table rebuilds.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    shards: Vec<Arc<AuditStore>>,
    /// `offsets[i]` is the global position of shard `i`'s first event;
    /// a trailing sentinel holds the total event count.
    offsets: Vec<usize>,
    reduction: ReductionStats,
    /// The shared entity array (authoritative: in a streaming snapshot,
    /// older sealed shards may carry a shorter prefix of it).
    entities: Arc<[Entity]>,
    /// The shared entity tables, for store-level entity-filter probes.
    tables: EntityTables,
    /// Stream provenance, when this store is a streaming snapshot.
    frontier: Option<StreamFrontier>,
}

impl ShardedStore {
    /// Ingests a parsed log into `shards` shards, optionally applying CPR
    /// (globally, before partitioning). Shard ingestion runs in parallel
    /// on scoped threads. `shards` is clamped to at least 1.
    pub fn ingest(log: &ParsedLog, use_cpr: bool, shards: usize) -> ShardedStore {
        let (events, reduction) = cpr::reduce_if(&log.events, use_cpr);
        let entities: Arc<[Entity]> = Arc::from(log.entities.as_slice());
        let tables = EntityTables::build(&entities);
        Self::build(entities, tables, events, reduction, shards)
    }

    /// Re-partitions an existing single store into `shards` shards,
    /// reusing its already reduced events (no second CPR pass) and its
    /// already built entity array and tables (shared, not copied).
    pub fn from_store(store: &AuditStore, shards: usize) -> ShardedStore {
        Self::build(
            Arc::clone(&store.entities),
            store.entity_tables(),
            store.events.clone(),
            store.reduction,
            shards,
        )
    }

    /// Assembles a store from already-built shards (the streaming
    /// snapshot path): offsets are derived from the shards' event counts,
    /// `entities`/`tables` are the authoritative current entity state
    /// (sealed shards may hold an older prefix), and `reduction` is the
    /// stream-global statistic.
    pub fn from_parts(
        shards: Vec<Arc<AuditStore>>,
        entities: Arc<[Entity]>,
        tables: EntityTables,
        reduction: ReductionStats,
    ) -> ShardedStore {
        assert!(
            !shards.is_empty(),
            "a sharded store needs at least one shard"
        );
        let mut offsets = Vec::with_capacity(shards.len() + 1);
        let mut pos = 0usize;
        for shard in &shards {
            offsets.push(pos);
            pos += shard.event_count();
        }
        offsets.push(pos);
        ShardedStore {
            shards,
            offsets,
            reduction,
            entities,
            tables,
            frontier: None,
        }
    }

    /// Attaches stream provenance (the streaming snapshot path; batch
    /// builds carry none).
    pub fn with_frontier(mut self, frontier: StreamFrontier) -> ShardedStore {
        self.frontier = Some(frontier);
        self
    }

    /// Stream provenance of this snapshot, when it was taken from a
    /// [`crate::stream::StreamingStore`]; `None` for batch-built stores.
    pub fn frontier(&self) -> Option<StreamFrontier> {
        self.frontier
    }

    fn build(
        entities: Arc<[Entity]>,
        tables: EntityTables,
        events: Vec<Event>,
        reduction: ReductionStats,
        shards: usize,
    ) -> ShardedStore {
        let n = shards.max(1);
        // Contiguous near-equal slices: the first `rem` shards take one
        // extra event. Over a time-ordered stream this is a time-window
        // partition balanced by event count.
        let base = events.len() / n;
        let rem = events.len() % n;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut pos = 0usize;
        for i in 0..n {
            offsets.push(pos);
            pos += base + usize::from(i < rem);
        }
        offsets.push(pos);
        debug_assert_eq!(pos, events.len());

        // Shard counts are caller-controlled: bound the build pool by the
        // core count instead of one thread per shard.
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let shards: Vec<Arc<AuditStore>> = fan_out(n, workers, |i| {
            let slice = &events[offsets[i]..offsets[i + 1]];
            let stats = ReductionStats {
                before: slice.len(),
                after: slice.len(),
            };
            Arc::new(AuditStore::from_shared(
                Arc::clone(&entities),
                &tables,
                slice.to_vec(),
                stats,
            ))
        });

        ShardedStore {
            shards,
            offsets,
            reduction,
            entities,
            tables,
            frontier: None,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// All shards, in time order.
    pub fn shards(&self) -> &[Arc<AuditStore>] {
        &self.shards
    }

    /// Shard `i`.
    pub fn shard(&self, i: usize) -> &AuditStore {
        &self.shards[i]
    }

    /// Global position of shard `i`'s first event.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Maps a global event position to `(shard index, local position)`.
    pub fn locate(&self, pos: usize) -> (usize, usize) {
        assert!(pos < self.event_count(), "event position out of range");
        // partition_point returns the first offset > pos; its predecessor
        // is the owning shard.
        let shard = self.offsets.partition_point(|&o| o <= pos) - 1;
        (shard, pos - self.offsets[shard])
    }

    /// The `[first start, max end]` time span of shard `i`'s events, or
    /// `None` for an empty shard.
    ///
    /// The `first start = min start` reading assumes the ingested stream
    /// was sorted by start time (true for CPR output and for the
    /// simulator's raw logs). Adjacent windows may still overlap at the
    /// boundary when a long-running event in one shard outlasts the start
    /// of the next — partitioning is by position in the sorted stream,
    /// not by cutting time in half-open intervals.
    pub fn shard_window(&self, i: usize) -> Option<(u64, u64)> {
        let events = &self.shards[i].events;
        let first = events.first()?;
        let hi = events.iter().map(|e| e.end).max().unwrap_or(first.end);
        Some((first.start, hi))
    }

    /// Global CPR statistics of the ingest.
    pub fn reduction(&self) -> ReductionStats {
        self.reduction
    }

    /// Total number of stored events across all shards.
    pub fn event_count(&self) -> usize {
        *self.offsets.last().expect("offsets always has a sentinel")
    }

    /// Entity accessor (entity ids are global; the entity array is shared
    /// across shards).
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// All entities, indexed by [`EntityId`].
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// The store-level entity table registered under `name` — the
    /// authoritative table for resolving entity predicates globally. (In
    /// a streaming snapshot, per-shard entity tables of older sealed
    /// shards hold only the entities known when the shard was sealed —
    /// sufficient for shard-local residual filtering, but not for global
    /// filter-set resolution.)
    pub fn entity_table(&self, name: &str) -> &Table {
        self.tables.table(name)
    }

    /// Shared handles to the store-level entity tables.
    pub fn entity_tables(&self) -> EntityTables {
        self.tables.clone()
    }

    /// Event at a global position.
    pub fn event_at(&self, pos: usize) -> &Event {
        let (shard, local) = self.locate(pos);
        self.shards[shard].event_at(local)
    }
}

impl EventLookup for ShardedStore {
    fn event_at(&self, pos: usize) -> &Event {
        ShardedStore::event_at(self, pos)
    }

    fn event_count(&self) -> usize {
        ShardedStore::event_count(self)
    }

    fn entity(&self, id: EntityId) -> &Entity {
        ShardedStore::entity(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_audit::sim::scenario::ScenarioBuilder;

    fn scenario_log() -> ParsedLog {
        ScenarioBuilder::new()
            .seed(42)
            .target_events(3_000)
            .build()
            .log
    }

    #[test]
    fn sharding_preserves_the_global_event_stream() {
        let log = scenario_log();
        let single = AuditStore::ingest(&log, true);
        let sharded = ShardedStore::ingest(&log, true, 4);
        assert_eq!(sharded.shard_count(), 4);
        assert_eq!(sharded.event_count(), single.event_count());
        assert_eq!(sharded.reduction(), single.reduction);
        for pos in 0..single.event_count() {
            assert_eq!(
                sharded.event_at(pos),
                single.event_at(pos),
                "position {pos}"
            );
        }
    }

    #[test]
    fn shards_are_contiguous_time_windows() {
        let log = scenario_log();
        let sharded = ShardedStore::ingest(&log, true, 8);
        // Over a start-sorted stream, contiguous partitioning means every
        // event in shard i+1 starts no earlier than every event in shard
        // i (window *ends* may overlap when a long event spans the cut —
        // see shard_window's doc).
        let mut prev_last_start = 0u64;
        for i in 0..sharded.shard_count() {
            let events = &sharded.shard(i).events;
            let first = events.first().expect("non-empty shard");
            assert!(
                first.start >= prev_last_start,
                "shard {i} starts before its predecessor's last event"
            );
            assert_eq!(
                sharded.shard_window(i).unwrap().0,
                first.start,
                "window lo is the first (min) start"
            );
            prev_last_start = events.last().unwrap().start;
        }
    }

    #[test]
    fn entities_shared_and_ids_global() {
        let log = scenario_log();
        let sharded = ShardedStore::ingest(&log, false, 3);
        assert_eq!(sharded.entities().len(), log.entities.len());
        for shard in sharded.shards() {
            // One physical entity array and one physical copy of each
            // entity table, shared by every shard — not replicas.
            assert!(std::ptr::eq(
                shard.entities.as_ptr(),
                sharded.entities().as_ptr()
            ));
            for table in [
                crate::store::TABLE_PROCESS,
                crate::store::TABLE_FILE,
                crate::store::TABLE_NETWORK,
            ] {
                assert!(std::ptr::eq(
                    shard.db.table(table) as *const _,
                    sharded.entity_table(table) as *const _
                ));
            }
        }
        let id = EntityId(0);
        assert_eq!(sharded.entity(id), &log.entities[0]);
    }

    #[test]
    fn locate_round_trips() {
        let log = scenario_log();
        let sharded = ShardedStore::ingest(&log, true, 5);
        for pos in [0, 1, sharded.event_count() / 2, sharded.event_count() - 1] {
            let (shard, local) = sharded.locate(pos);
            assert_eq!(sharded.offset(shard) + local, pos);
            assert!(local < sharded.shard(shard).event_count());
        }
    }

    #[test]
    fn more_shards_than_events_leaves_empty_shards() {
        let log = ScenarioBuilder::new()
            .seed(1)
            .no_attacks()
            .target_events(50)
            .build()
            .log;
        let n = log.events.len() + 10;
        let sharded = ShardedStore::ingest(&log, false, n);
        assert_eq!(sharded.shard_count(), n);
        assert_eq!(sharded.event_count(), log.events.len());
        assert!(sharded.shards().iter().any(|s| s.event_count() == 0));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let log = scenario_log();
        let sharded = ShardedStore::ingest(&log, true, 0);
        assert_eq!(sharded.shard_count(), 1);
    }

    #[test]
    fn from_store_matches_ingest() {
        let log = scenario_log();
        let single = AuditStore::ingest(&log, true);
        let a = ShardedStore::from_store(&single, 4);
        let b = ShardedStore::ingest(&log, true, 4);
        assert_eq!(a.event_count(), b.event_count());
        for i in 0..a.shard_count() {
            assert_eq!(a.shard(i).events, b.shard(i).events);
        }
    }
}
