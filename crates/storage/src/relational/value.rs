//! Typed cell values and SQL `LIKE` pattern matching.

use std::cmp::Ordering;
use std::fmt;

/// A typed cell value.
///
/// The audit schema only needs 64-bit integers (ids, pids, ports,
/// timestamps, byte counts) and strings (paths, names, IPs, operations).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A UTF-8 string.
    Str(String),
}

impl Value {
    /// Constructs a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Constructs an integer value.
    pub fn int(i: impl Into<i64>) -> Value {
        Value::Int(i.into())
    }

    /// Returns the integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// Total order: integers before strings (cross-type comparisons only
    /// occur for index layout, never from well-typed queries).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Int(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Int(_)) => Ordering::Greater,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u16> for Value {
    fn from(v: u16) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// SQL `LIKE` matching: `%` matches any run of characters (including
/// empty), `_` matches exactly one character. Matching is case-sensitive,
/// as in PostgreSQL.
///
/// Implemented with the classic two-pointer wildcard algorithm — O(n·m)
/// worst case but linear on typical patterns, with no allocation.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    // Backtrack anchors for the most recent `%`.
    let mut star: Option<usize> = None;
    let mut star_ti = 0usize;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_ti = ti;
            pi += 1;
        } else if let Some(s) = star {
            // Retry: let the last `%` absorb one more character.
            pi = s + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// A reference `LIKE` implementation via recursion, used by property tests
/// to validate [`like_match`].
#[cfg(test)]
pub fn like_match_reference(pattern: &str, text: &str) -> bool {
    fn go(p: &[char], t: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // `%` absorbs 0..=len(t) characters.
                (0..=t.len()).any(|k| go(&p[1..], &t[k..]))
            }
            Some('_') => !t.is_empty() && go(&p[1..], &t[1..]),
            Some(c) => t.first() == Some(c) && go(&p[1..], &t[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    go(&p, &t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn like_basics() {
        assert!(like_match("%/bin/tar%", "/bin/tar"));
        assert!(like_match("%/bin/tar%", "/usr/local/bin/tar --extract"));
        assert!(!like_match("%/bin/tar%", "/bin/ta"));
        assert!(like_match("/etc/passwd", "/etc/passwd"));
        assert!(!like_match("/etc/passwd", "/etc/passwd.bak"));
        assert!(like_match("/etc/%", "/etc/passwd"));
        assert!(like_match("%.gz", "/var/log/syslog.1.gz"));
        assert!(like_match("_at", "cat"));
        assert!(!like_match("_at", "at"));
        assert!(like_match("%", ""));
        assert!(like_match("%%", "anything"));
        assert!(!like_match("", "x"));
        assert!(like_match("", ""));
    }

    #[test]
    fn like_multiple_wildcards() {
        assert!(like_match("%upload%tar%", "/tmp/upload.tar"));
        assert!(like_match("a%b%c", "aXXbYYc"));
        assert!(!like_match("a%b%c", "aXXbYY"));
        assert!(like_match("%_%", "x"));
        assert!(!like_match("%_%", ""));
    }

    #[test]
    fn value_ordering() {
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::int(i64::MAX) < Value::str(""));
    }

    #[test]
    fn value_accessors_and_display() {
        assert_eq!(Value::int(5).as_int(), Some(5));
        assert_eq!(Value::str("x").as_int(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::int(5).to_string(), "5");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::from(7u32), Value::Int(7));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
    }

    proptest! {
        #[test]
        fn like_agrees_with_reference(
            pattern in "[ab%_]{0,8}",
            text in "[ab]{0,10}",
        ) {
            prop_assert_eq!(
                like_match(&pattern, &text),
                like_match_reference(&pattern, &text)
            );
        }

        #[test]
        fn contains_pattern_equals_substring_search(
            needle in "[a-c]{1,4}",
            text in "[a-c]{0,16}",
        ) {
            let pattern = format!("%{needle}%");
            prop_assert_eq!(like_match(&pattern, &text), text.contains(&needle));
        }
    }
}
