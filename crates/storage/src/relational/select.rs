//! Select-project-join plans over the catalog — the logical form of the
//! "SQL data query which joins entity tables with event table" (§II-F).

use super::predicate::Predicate;
use super::table::{Database, RowId};
use super::value::Value;
use std::collections::HashMap;

/// A table reference with an alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub table: String,
    /// Alias used by join conditions, filters, and projections.
    pub alias: String,
}

impl TableRef {
    /// Creates a table reference.
    pub fn new(table: impl Into<String>, alias: impl Into<String>) -> TableRef {
        TableRef {
            table: table.into(),
            alias: alias.into(),
        }
    }
}

/// An equi-join condition `left_alias.left_col = right_alias.right_col`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinCond {
    /// Left side `(alias, column)`.
    pub left: (String, String),
    /// Right side `(alias, column)`.
    pub right: (String, String),
}

impl JoinCond {
    /// Creates a join condition.
    pub fn new(
        la: impl Into<String>,
        lc: impl Into<String>,
        ra: impl Into<String>,
        rc: impl Into<String>,
    ) -> JoinCond {
        JoinCond {
            left: (la.into(), lc.into()),
            right: (ra.into(), rc.into()),
        }
    }
}

/// A select-project-join query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SqlSelect {
    /// Tables in the `FROM` clause.
    pub from: Vec<TableRef>,
    /// Equi-join conditions.
    pub joins: Vec<JoinCond>,
    /// Per-alias filters (conjoined).
    pub filters: Vec<(String, Predicate)>,
    /// Projected `(alias, column)` pairs.
    pub projection: Vec<(String, String)>,
    /// Whether to deduplicate projected rows.
    pub distinct: bool,
}

/// Result of the join phase: one [`RowId`] per alias per output tuple.
/// The engine reads entity/event row ids straight from here; projection
/// to values is a separate, optional step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinedRows {
    /// Alias order for the tuples.
    pub aliases: Vec<String>,
    /// One row-id vector (parallel to `aliases`) per output tuple.
    pub tuples: Vec<Vec<RowId>>,
}

impl JoinedRows {
    /// Position of an alias within tuples.
    pub fn slot(&self, alias: &str) -> usize {
        self.aliases
            .iter()
            .position(|a| a == alias)
            .unwrap_or_else(|| panic!("no alias `{alias}` in join result"))
    }

    /// Column of row ids for one alias.
    pub fn column(&self, alias: &str) -> Vec<RowId> {
        let slot = self.slot(alias);
        self.tuples.iter().map(|t| t[slot]).collect()
    }
}

impl SqlSelect {
    /// Executes the join phase: evaluates per-alias filters (with index
    /// assistance), then joins smallest-first via hash joins.
    pub fn execute(&self, db: &Database) -> JoinedRows {
        assert!(!self.from.is_empty(), "SELECT requires at least one table");
        // 1. Candidate rows per alias.
        let mut candidates: HashMap<&str, Vec<RowId>> = HashMap::new();
        for tref in &self.from {
            let table = db.table(&tref.table);
            let pred = Predicate::and(
                self.filters
                    .iter()
                    .filter(|(a, _)| *a == tref.alias)
                    .map(|(_, p)| p.clone())
                    .collect(),
            );
            candidates.insert(tref.alias.as_str(), table.select(&pred));
        }

        // 2. Join order: start from the smallest candidate set; repeatedly
        //    attach the alias connected by a join condition whose candidate
        //    set is smallest (greedy); fall back to cross product if the
        //    join graph is disconnected.
        let mut remaining: Vec<&TableRef> = self.from.iter().collect();
        remaining.sort_by_key(|t| candidates[t.alias.as_str()].len());
        let first = remaining.remove(0);

        let mut aliases = vec![first.alias.clone()];
        let mut tuples: Vec<Vec<RowId>> = candidates[first.alias.as_str()]
            .iter()
            .map(|&rid| vec![rid])
            .collect();

        while !remaining.is_empty() {
            // Prefer an alias connected to the already-joined set.
            let pos = remaining
                .iter()
                .position(|t| {
                    self.joins.iter().any(|j| {
                        (aliases.contains(&j.left.0) && j.right.0 == t.alias)
                            || (aliases.contains(&j.right.0) && j.left.0 == t.alias)
                    })
                })
                .unwrap_or(0);
            let next = remaining.remove(pos);
            let next_table = db.table(&next.table);
            let next_rows = &candidates[next.alias.as_str()];

            // Join conditions connecting `next` to the joined set.
            let conds: Vec<(usize, usize)> = self
                .joins
                .iter()
                .filter_map(|j| {
                    if aliases.contains(&j.left.0) && j.right.0 == next.alias {
                        Some((
                            (
                                aliases
                                    .iter()
                                    .position(|a| *a == j.left.0)
                                    .expect("contained"),
                                j.left.1.clone(),
                            ),
                            j.right.1.clone(),
                        ))
                    } else if aliases.contains(&j.right.0) && j.left.0 == next.alias {
                        Some((
                            (
                                aliases
                                    .iter()
                                    .position(|a| *a == j.right.0)
                                    .expect("contained"),
                                j.right.1.clone(),
                            ),
                            j.left.1.clone(),
                        ))
                    } else {
                        None
                    }
                })
                .map(|((slot, lcol), rcol)| {
                    let ltable = db.table(
                        &self
                            .from
                            .iter()
                            .find(|t| t.alias == aliases[slot])
                            .expect("alias resolved")
                            .table,
                    );
                    (slot, ltable.col(&lcol), next_table.col(&rcol))
                })
                .map(|(slot, lpos, rpos)| {
                    // Encode both positions into one pair via closure below.
                    (slot * 1_000_000 + lpos, rpos)
                })
                .collect();

            if conds.is_empty() {
                // Cross product (rare; only for degenerate queries).
                let mut out = Vec::with_capacity(tuples.len() * next_rows.len());
                for t in &tuples {
                    for &rid in next_rows {
                        let mut nt = t.clone();
                        nt.push(rid);
                        out.push(nt);
                    }
                }
                tuples = out;
            } else {
                // Hash join on the composite key of all join conditions.
                let from_tables: HashMap<&str, &str> = self
                    .from
                    .iter()
                    .map(|t| (t.alias.as_str(), t.table.as_str()))
                    .collect();
                let mut probe: HashMap<Vec<Value>, Vec<RowId>> = HashMap::new();
                for &rid in next_rows {
                    let key: Vec<Value> = conds
                        .iter()
                        .map(|&(_, rpos)| next_table.row(rid)[rpos].clone())
                        .collect();
                    probe.entry(key).or_default().push(rid);
                }
                let mut out = Vec::new();
                for t in &tuples {
                    let key: Vec<Value> = conds
                        .iter()
                        .map(|&(packed, _)| {
                            let slot = packed / 1_000_000;
                            let lpos = packed % 1_000_000;
                            let ltable = db.table(from_tables[aliases[slot].as_str()]);
                            ltable.row(t[slot])[lpos].clone()
                        })
                        .collect();
                    if let Some(matches) = probe.get(&key) {
                        for &rid in matches {
                            let mut nt = t.clone();
                            nt.push(rid);
                            out.push(nt);
                        }
                    }
                }
                tuples = out;
            }
            aliases.push(next.alias.clone());
        }

        JoinedRows { aliases, tuples }
    }

    /// Executes and projects values, honoring `distinct`.
    pub fn execute_project(&self, db: &Database) -> Vec<Vec<Value>> {
        let joined = self.execute(db);
        let alias_tables: HashMap<&str, &str> = self
            .from
            .iter()
            .map(|t| (t.alias.as_str(), t.table.as_str()))
            .collect();
        let mut rows: Vec<Vec<Value>> = joined
            .tuples
            .iter()
            .map(|t| {
                self.projection
                    .iter()
                    .map(|(alias, col)| {
                        let table = db.table(alias_tables[alias.as_str()]);
                        table.row(t[joined.slot(alias)])[table.col(col)].clone()
                    })
                    .collect()
            })
            .collect();
        if self.distinct {
            rows.sort();
            rows.dedup();
        }
        rows
    }

    /// Renders the plan as SQL text (for the conciseness experiment and
    /// for debugging).
    pub fn to_sql(&self) -> String {
        let mut sql = String::from("SELECT ");
        if self.distinct {
            sql.push_str("DISTINCT ");
        }
        if self.projection.is_empty() {
            sql.push('*');
        } else {
            let cols: Vec<String> = self
                .projection
                .iter()
                .map(|(a, c)| format!("{a}.{c}"))
                .collect();
            sql.push_str(&cols.join(", "));
        }
        sql.push_str("\nFROM ");
        let tables: Vec<String> = self
            .from
            .iter()
            .map(|t| format!("{} AS {}", t.table, t.alias))
            .collect();
        sql.push_str(&tables.join(", "));
        let mut conds: Vec<String> = self
            .joins
            .iter()
            .map(|j| format!("{}.{} = {}.{}", j.left.0, j.left.1, j.right.0, j.right.1))
            .collect();
        for (alias, pred) in &self.filters {
            if !matches!(pred, Predicate::True) {
                conds.push(pred.to_sql(alias));
            }
        }
        if !conds.is_empty() {
            sql.push_str("\nWHERE ");
            sql.push_str(&conds.join("\n  AND "));
        }
        sql.push(';');
        sql
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::table::{Column, Table};

    /// Two-table fixture: `proc(id, exename)` and `event(id, subject, op)`.
    fn db() -> Database {
        let mut procs = Table::new("proc", vec![Column::new("id"), Column::new("exename")]);
        procs.insert(vec![Value::int(0), Value::str("/bin/tar")]);
        procs.insert(vec![Value::int(1), Value::str("/bin/cat")]);
        procs.insert(vec![Value::int(2), Value::str("/bin/tar")]);

        let mut events = Table::new(
            "event",
            vec![Column::new("id"), Column::new("subject"), Column::new("op")],
        );
        events.insert(vec![Value::int(0), Value::int(0), Value::str("read")]);
        events.insert(vec![Value::int(1), Value::int(1), Value::str("read")]);
        events.insert(vec![Value::int(2), Value::int(2), Value::str("write")]);
        events.insert(vec![Value::int(3), Value::int(0), Value::str("write")]);
        events.create_hash_index("op");
        events.create_btree_index("subject");

        let mut db = Database::new();
        db.add_table(procs);
        db.add_table(events);
        db
    }

    fn tar_reads() -> SqlSelect {
        SqlSelect {
            from: vec![TableRef::new("proc", "p"), TableRef::new("event", "e")],
            joins: vec![JoinCond::new("p", "id", "e", "subject")],
            filters: vec![
                ("p".into(), Predicate::like("exename", "%/bin/tar%")),
                ("e".into(), Predicate::eq("op", "read")),
            ],
            projection: vec![("e".into(), "id".into())],
            distinct: false,
        }
    }

    #[test]
    fn join_filters_and_projects() {
        let rows = tar_reads().execute_project(&db());
        assert_eq!(rows, vec![vec![Value::int(0)]]);
    }

    #[test]
    fn join_phase_exposes_row_ids() {
        let joined = tar_reads().execute(&db());
        assert_eq!(joined.tuples.len(), 1);
        assert_eq!(joined.column("e"), vec![0]);
        assert_eq!(joined.column("p"), vec![0]);
    }

    #[test]
    fn distinct_dedups() {
        let mut q = SqlSelect {
            from: vec![TableRef::new("proc", "p"), TableRef::new("event", "e")],
            joins: vec![JoinCond::new("p", "id", "e", "subject")],
            filters: vec![("p".into(), Predicate::like("exename", "%/bin/tar%"))],
            projection: vec![("p".into(), "exename".into())],
            distinct: false,
        };
        assert_eq!(q.execute_project(&db()).len(), 3);
        q.distinct = true;
        assert_eq!(q.execute_project(&db()), vec![vec![Value::str("/bin/tar")]]);
    }

    #[test]
    fn cross_product_without_join_conditions() {
        let q = SqlSelect {
            from: vec![TableRef::new("proc", "p"), TableRef::new("event", "e")],
            joins: vec![],
            filters: vec![],
            projection: vec![("p".into(), "id".into()), ("e".into(), "id".into())],
            distinct: false,
        };
        assert_eq!(q.execute_project(&db()).len(), 3 * 4);
    }

    #[test]
    fn single_table_select() {
        let q = SqlSelect {
            from: vec![TableRef::new("event", "e")],
            joins: vec![],
            filters: vec![("e".into(), Predicate::eq("op", "write"))],
            projection: vec![("e".into(), "id".into())],
            distinct: false,
        };
        let rows = q.execute_project(&db());
        assert_eq!(rows, vec![vec![Value::int(2)], vec![Value::int(3)]]);
    }

    #[test]
    fn sql_rendering() {
        let sql = tar_reads().to_sql();
        assert!(sql.starts_with("SELECT e.id\nFROM proc AS p, event AS e"));
        assert!(sql.contains("p.id = e.subject"));
        assert!(sql.contains("p.exename LIKE '%/bin/tar%'"));
        assert!(sql.contains("e.op = 'read'"));
        assert!(sql.ends_with(';'));
    }

    #[test]
    fn join_order_is_result_invariant() {
        // Same query with FROM order reversed must give identical results.
        let a = tar_reads().execute_project(&db());
        let mut q = tar_reads();
        q.from.reverse();
        let b = q.execute_project(&db());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn empty_from_panics() {
        SqlSelect::default().execute(&db());
    }
}
