//! Secondary indexes: hash (equality) and B-tree (equality + range).

use super::table::RowId;
use super::value::Value;
use std::collections::{BTreeMap, HashMap};

/// Common interface over the two index kinds.
pub trait Index {
    /// Adds a `(key, row)` pair.
    fn insert(&mut self, key: Value, row: RowId);
    /// Rows whose key equals `key` (empty slice when absent).
    fn get(&self, key: &Value) -> &[RowId];
    /// Number of distinct keys.
    fn distinct_keys(&self) -> usize;
}

/// Hash index: O(1) equality lookups. Mirrors a PostgreSQL hash index on
/// low-cardinality key attributes (e.g. `event.op`).
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: HashMap<Value, Vec<RowId>>,
}

impl Index for HashIndex {
    fn insert(&mut self, key: Value, row: RowId) {
        self.map.entry(key).or_default().push(row);
    }

    fn get(&self, key: &Value) -> &[RowId] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// B-tree index: ordered, supports range scans. Mirrors PostgreSQL's
/// default btree index (e.g. on `event.start` or entity-id columns).
#[derive(Debug, Clone, Default)]
pub struct BTreeIndex {
    map: BTreeMap<Value, Vec<RowId>>,
}

impl BTreeIndex {
    /// Rows whose key lies within `[lo, hi]` (inclusive), in key order.
    pub fn range(&self, lo: &Value, hi: &Value) -> Vec<RowId> {
        if lo > hi {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (_, rows) in self.map.range(lo.clone()..=hi.clone()) {
            out.extend_from_slice(rows);
        }
        out
    }
}

impl Index for BTreeIndex {
    fn insert(&mut self, key: Value, row: RowId) {
        self.map.entry(key).or_default().push(row);
    }

    fn get(&self, key: &Value) -> &[RowId] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hash_index_basics() {
        let mut idx = HashIndex::default();
        idx.insert(Value::str("read"), 0);
        idx.insert(Value::str("read"), 2);
        idx.insert(Value::str("write"), 1);
        assert_eq!(idx.get(&Value::str("read")), &[0, 2]);
        assert_eq!(idx.get(&Value::str("connect")), &[] as &[RowId]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn btree_range_scan() {
        let mut idx = BTreeIndex::default();
        for i in 0..10i64 {
            idx.insert(Value::int(i * 10), i as RowId);
        }
        assert_eq!(idx.range(&Value::int(25), &Value::int(55)), vec![3, 4, 5]);
        assert_eq!(idx.range(&Value::int(90), &Value::int(90)), vec![9]);
        assert!(idx.range(&Value::int(91), &Value::int(100)).is_empty());
        assert!(idx.range(&Value::int(50), &Value::int(10)).is_empty());
    }

    #[test]
    fn btree_equality_via_get() {
        let mut idx = BTreeIndex::default();
        idx.insert(Value::int(5), 7);
        idx.insert(Value::int(5), 9);
        assert_eq!(idx.get(&Value::int(5)), &[7, 9]);
        assert_eq!(idx.distinct_keys(), 1);
    }

    proptest! {
        /// Range scans agree with a linear filter over the inserted keys.
        #[test]
        fn btree_range_matches_filter(
            keys in prop::collection::vec(0i64..100, 0..50),
            lo in 0i64..100,
            span in 0i64..40,
        ) {
            let hi = (lo + span).min(99);
            let mut idx = BTreeIndex::default();
            for (row, &k) in keys.iter().enumerate() {
                idx.insert(Value::int(k), row);
            }
            let mut expect: Vec<RowId> = keys
                .iter()
                .enumerate()
                .filter(|(_, &k)| k >= lo && k <= hi)
                .map(|(row, _)| row)
                .collect();
            let mut got = idx.range(&Value::int(lo), &Value::int(hi));
            expect.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}
