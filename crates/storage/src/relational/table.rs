//! Tables, rows, and the database catalog.

use super::index::{BTreeIndex, HashIndex, Index};
use super::predicate::Predicate;
use super::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Row identifier within a table (dense, append-only).
pub type RowId = usize;

/// A row is one value per column, in schema order.
pub type Row = Vec<Value>;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>) -> Column {
        Column { name: name.into() }
    }
}

/// An append-only typed table with optional secondary indexes.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name.
    pub name: String,
    columns: Vec<Column>,
    col_pos: HashMap<String, usize>,
    rows: Vec<Row>,
    hash_indexes: HashMap<String, HashIndex>,
    btree_indexes: HashMap<String, BTreeIndex>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Table {
        let col_pos = columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
        Table {
            name: name.into(),
            columns,
            col_pos,
            rows: Vec::new(),
            hash_indexes: HashMap::new(),
            btree_indexes: HashMap::new(),
        }
    }

    /// The schema, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Resolves a column name to its position.
    ///
    /// Panics on unknown columns; the engine validates column names during
    /// compilation, so reaching this with a bad name is a logic bug.
    #[inline]
    pub fn col(&self, name: &str) -> usize {
        *self
            .col_pos
            .get(name)
            .unwrap_or_else(|| panic!("table `{}` has no column `{name}`", self.name))
    }

    /// Whether the table has a column with this name.
    pub fn has_col(&self, name: &str) -> bool {
        self.col_pos.contains_key(name)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row, maintaining all indexes. Returns its [`RowId`].
    ///
    /// Panics if the arity does not match the schema.
    pub fn insert(&mut self, row: Row) -> RowId {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity mismatch on table `{}`",
            self.name
        );
        let id = self.rows.len();
        for (col, idx) in &mut self.hash_indexes {
            idx.insert(row[self.col_pos[col]].clone(), id);
        }
        for (col, idx) in &mut self.btree_indexes {
            idx.insert(row[self.col_pos[col]].clone(), id);
        }
        self.rows.push(row);
        id
    }

    /// Accesses a row by id.
    #[inline]
    pub fn row(&self, id: RowId) -> &Row {
        &self.rows[id]
    }

    /// Iterates `(RowId, &Row)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows.iter().enumerate()
    }

    /// Reads one cell.
    #[inline]
    pub fn cell(&self, id: RowId, col: &str) -> &Value {
        &self.rows[id][self.col(col)]
    }

    /// Builds (or rebuilds) a hash index on `col`.
    pub fn create_hash_index(&mut self, col: &str) {
        let pos = self.col(col);
        let mut idx = HashIndex::default();
        for (rid, row) in self.rows.iter().enumerate() {
            idx.insert(row[pos].clone(), rid);
        }
        self.hash_indexes.insert(col.to_string(), idx);
    }

    /// Builds (or rebuilds) a B-tree index on `col`.
    pub fn create_btree_index(&mut self, col: &str) {
        let pos = self.col(col);
        let mut idx = BTreeIndex::default();
        for (rid, row) in self.rows.iter().enumerate() {
            idx.insert(row[pos].clone(), rid);
        }
        self.btree_indexes.insert(col.to_string(), idx);
    }

    /// Returns row ids whose `col` equals any of `values`, via the best
    /// available index; `None` when no index exists on `col`.
    pub fn index_lookup(&self, col: &str, values: &[Value]) -> Option<Vec<RowId>> {
        if let Some(idx) = self.hash_indexes.get(col) {
            let mut out = Vec::new();
            for v in values {
                out.extend_from_slice(idx.get(v));
            }
            return Some(out);
        }
        if let Some(idx) = self.btree_indexes.get(col) {
            let mut out = Vec::new();
            for v in values {
                out.extend_from_slice(idx.get(v));
            }
            return Some(out);
        }
        None
    }

    /// Returns row ids whose `col` lies in `[lo, hi]` via a B-tree index;
    /// `None` when no B-tree index exists on `col`.
    pub fn index_range(&self, col: &str, lo: &Value, hi: &Value) -> Option<Vec<RowId>> {
        self.btree_indexes.get(col).map(|idx| idx.range(lo, hi))
    }

    /// Evaluates `pred` over the whole table (or an index-reduced subset)
    /// and returns matching row ids in ascending order.
    ///
    /// Index selection: if the predicate pins an indexed column to
    /// concrete values, the scan starts from the index result instead of
    /// the full table — the "indexes are created on key attributes to
    /// speed up the search" behavior of §II-B.
    pub fn select(&self, pred: &Predicate) -> Vec<RowId> {
        // Try every indexed column for a pin.
        let candidate = self
            .hash_indexes
            .keys()
            .chain(self.btree_indexes.keys())
            .find_map(|col| {
                pred.pinned_values(col)
                    .and_then(|vals| self.index_lookup(col, &vals))
            });
        match candidate {
            Some(mut rids) => {
                rids.sort_unstable();
                rids.dedup();
                rids.retain(|&rid| pred.eval(self, &self.rows[rid]));
                rids
            }
            None => self
                .rows
                .iter()
                .enumerate()
                .filter(|(_, row)| pred.eval(self, row))
                .map(|(rid, _)| rid)
                .collect(),
        }
    }
}

/// A named collection of tables (the database catalog).
///
/// Tables are held behind [`Arc`] so immutable tables can be *shared*
/// between databases: a sharded store registers one physical copy of the
/// (identical) entity tables in every shard's catalog instead of
/// replicating them per shard.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<String, Arc<Table>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Adds (or replaces) a table.
    pub fn add_table(&mut self, table: Table) {
        self.add_shared_table(Arc::new(table));
    }

    /// Adds (or replaces) a table that may be shared with other catalogs.
    pub fn add_shared_table(&mut self, table: Arc<Table>) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Looks up a table.
    ///
    /// Panics on unknown table names (validated during compilation).
    pub fn table(&self, name: &str) -> &Table {
        self.tables
            .get(name)
            .unwrap_or_else(|| panic!("no table named `{name}`"))
    }

    /// Shared handle to a table (for registering it in another catalog).
    pub fn shared_table(&self, name: &str) -> Arc<Table> {
        Arc::clone(
            self.tables
                .get(name)
                .unwrap_or_else(|| panic!("no table named `{name}`")),
        )
    }

    /// Mutable table lookup. Clones the table first if it is currently
    /// shared with another catalog (copy-on-write).
    pub fn table_mut(&mut self, name: &str) -> &mut Table {
        Arc::make_mut(
            self.tables
                .get_mut(name)
                .unwrap_or_else(|| panic!("no table named `{name}`")),
        )
    }

    /// Whether the database has a table with this name.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn event_table(n: usize) -> Table {
        let mut t = Table::new(
            "event",
            vec![Column::new("id"), Column::new("op"), Column::new("start")],
        );
        let ops = ["read", "write", "connect"];
        for i in 0..n {
            t.insert(vec![
                Value::int(i as i64),
                Value::str(ops[i % 3]),
                Value::int((i * 10) as i64),
            ]);
        }
        t
    }

    #[test]
    fn insert_and_access() {
        let t = event_table(5);
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.cell(2, "op"), &Value::str("connect"));
        assert_eq!(t.col("start"), 2);
        assert!(t.has_col("op") && !t.has_col("nope"));
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn unknown_column_panics() {
        event_table(1).col("missing");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = event_table(0);
        t.insert(vec![Value::int(1)]);
    }

    #[test]
    fn select_without_index_scans() {
        let t = event_table(30);
        let rids = t.select(&Predicate::eq("op", "read"));
        assert_eq!(rids.len(), 10);
        for rid in rids {
            assert_eq!(t.cell(rid, "op"), &Value::str("read"));
        }
    }

    #[test]
    fn select_with_hash_index_matches_scan() {
        let mut t = event_table(100);
        let scan = t.select(&Predicate::eq("op", "write"));
        t.create_hash_index("op");
        let indexed = t.select(&Predicate::eq("op", "write"));
        assert_eq!(scan, indexed);
    }

    #[test]
    fn btree_range_lookup() {
        let mut t = event_table(50);
        t.create_btree_index("start");
        let rids = t
            .index_range("start", &Value::int(100), &Value::int(150))
            .unwrap();
        assert_eq!(rids.len(), 6); // starts 100,110,...,150
        assert!(t
            .index_range("op", &Value::int(0), &Value::int(1))
            .is_none());
    }

    #[test]
    fn index_maintained_across_inserts() {
        let mut t = event_table(0);
        t.create_hash_index("op");
        t.insert(vec![Value::int(0), Value::str("read"), Value::int(0)]);
        t.insert(vec![Value::int(1), Value::str("read"), Value::int(5)]);
        let rids = t.index_lookup("op", &[Value::str("read")]).unwrap();
        assert_eq!(rids.len(), 2);
    }

    #[test]
    fn database_catalog() {
        let mut db = Database::new();
        db.add_table(event_table(3));
        assert!(db.has_table("event"));
        assert_eq!(db.table("event").len(), 3);
        assert_eq!(db.table_names(), vec!["event"]);
        db.table_mut("event")
            .insert(vec![Value::int(3), Value::str("read"), Value::int(30)]);
        assert_eq!(db.table("event").len(), 4);
    }

    #[test]
    #[should_panic(expected = "no table")]
    fn missing_table_panics() {
        Database::new().table("ghost");
    }

    proptest! {
        /// Indexed selection must agree with a full scan for any mix of
        /// pinned and non-pinned predicates.
        #[test]
        fn indexed_select_equals_scan(
            n in 1usize..120,
            pin in prop::sample::select(vec!["read", "write", "connect"]),
            lo in 0i64..500,
        ) {
            let mut plain = event_table(n);
            let pred = Predicate::And(vec![
                Predicate::eq("op", pin),
                Predicate::Cmp("start".into(), super::super::predicate::CmpOp::Ge, Value::int(lo)),
            ]);
            let scan = plain.select(&pred);
            plain.create_hash_index("op");
            plain.create_btree_index("start");
            let indexed = plain.select(&pred);
            prop_assert_eq!(scan, indexed);
        }
    }
}
