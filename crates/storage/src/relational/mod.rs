//! Embedded relational backend (the PostgreSQL stand-in).
//!
//! Entities and events are stored in typed tables; B-tree and hash indexes
//! accelerate equality and range lookups; [`SqlSelect`] is the logical
//! select-project-join plan the query engine compiles TBQL event patterns
//! into, and it renders to SQL text for the paper's conciseness
//! comparison.

mod index;
mod predicate;
mod select;
mod table;
mod value;

pub use index::{BTreeIndex, HashIndex, Index};
pub use predicate::{CmpOp, Predicate};
pub use select::{JoinCond, SqlSelect, TableRef};
pub use table::{Column, Database, Row, RowId, Table};
pub use value::{like_match, Value};
