//! Predicate AST over table columns, with selectivity estimation.

use super::table::{Row, Table};
use super::value::{like_match, Value};
use std::collections::HashSet;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Evaluates the comparison on an ordering-capable pair.
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        let ord = a.total_cmp(b);
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => !ord.is_eq(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql())
    }
}

/// A boolean predicate over a single table's columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (no constraint).
    True,
    /// `col <op> value`
    Cmp(String, CmpOp, Value),
    /// `col LIKE pattern` (`%`/`_` wildcards).
    Like(String, String),
    /// `col IN (…)` — used by the engine to push bindings from already
    /// executed patterns into dependent ones.
    InSet(String, HashSet<Value>),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `col = value` shorthand.
    pub fn eq(col: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp(col.into(), CmpOp::Eq, value.into())
    }

    /// `col LIKE pattern` shorthand.
    pub fn like(col: impl Into<String>, pattern: impl Into<String>) -> Predicate {
        Predicate::Like(col.into(), pattern.into())
    }

    /// Conjunction that drops `True` legs and flattens singletons.
    pub fn and(preds: Vec<Predicate>) -> Predicate {
        let mut legs: Vec<Predicate> = preds
            .into_iter()
            .filter(|p| !matches!(p, Predicate::True))
            .collect();
        match legs.len() {
            0 => Predicate::True,
            1 => legs.pop().expect("len checked"),
            _ => Predicate::And(legs),
        }
    }

    /// Evaluates against a row of `table`.
    ///
    /// Panics if the predicate references a column the table lacks — the
    /// engine validates schemas before execution, so that is a logic bug.
    pub fn eval(&self, table: &Table, row: &Row) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp(col, op, value) => op.eval(&row[table.col(col)], value),
            Predicate::Like(col, pattern) => match &row[table.col(col)] {
                Value::Str(s) => like_match(pattern, s),
                Value::Int(i) => like_match(pattern, &i.to_string()),
            },
            Predicate::InSet(col, set) => set.contains(&row[table.col(col)]),
            Predicate::And(ps) => ps.iter().all(|p| p.eval(table, row)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(table, row)),
            Predicate::Not(p) => !p.eval(table, row),
        }
    }

    /// Number of atomic constraints — the paper's *pruning score* counts
    /// "the number of constraints declared" per pattern (§II-F).
    pub fn constraint_count(&self) -> usize {
        match self {
            Predicate::True => 0,
            Predicate::Cmp(..) | Predicate::Like(..) | Predicate::InSet(..) => 1,
            Predicate::And(ps) | Predicate::Or(ps) => {
                ps.iter().map(Predicate::constraint_count).sum()
            }
            Predicate::Not(p) => p.constraint_count(),
        }
    }

    /// Rough selectivity estimate in `[0, 1]` (lower = more selective),
    /// used for index choice and join ordering.
    pub fn selectivity(&self) -> f64 {
        match self {
            Predicate::True => 1.0,
            Predicate::Cmp(_, CmpOp::Eq, _) => 0.01,
            Predicate::Cmp(_, CmpOp::Ne, _) => 0.95,
            Predicate::Cmp(..) => 0.3,
            Predicate::Like(_, p) => {
                // A pattern that is all wildcards filters nothing.
                if p.chars().all(|c| c == '%' || c == '_') {
                    1.0
                } else {
                    0.05
                }
            }
            Predicate::InSet(_, set) => (set.len() as f64 * 0.005).min(0.5),
            Predicate::And(ps) => ps.iter().map(Predicate::selectivity).product(),
            Predicate::Or(ps) => ps
                .iter()
                .map(Predicate::selectivity)
                .fold(0.0, |a, b| (a + b).min(1.0)),
            Predicate::Not(p) => 1.0 - p.selectivity(),
        }
    }

    /// If this predicate pins `col` to specific values (an equality or an
    /// in-set, possibly inside a conjunction), returns those values — the
    /// index-selection hook.
    pub fn pinned_values(&self, col: &str) -> Option<Vec<Value>> {
        match self {
            Predicate::Cmp(c, CmpOp::Eq, v) if c == col => Some(vec![v.clone()]),
            Predicate::InSet(c, set) if c == col => Some(set.iter().cloned().collect()),
            Predicate::And(ps) => ps.iter().find_map(|p| p.pinned_values(col)),
            _ => None,
        }
    }

    /// Renders as a SQL boolean expression with `alias.` column prefixes.
    pub fn to_sql(&self, alias: &str) -> String {
        match self {
            Predicate::True => "TRUE".to_string(),
            Predicate::Cmp(col, op, v) => format!("{alias}.{col} {} {}", op.sql(), sql_value(v)),
            Predicate::Like(col, p) => format!("{alias}.{col} LIKE '{p}'"),
            Predicate::InSet(col, set) => {
                let mut vals: Vec<String> = set.iter().map(sql_value).collect();
                vals.sort();
                format!("{alias}.{col} IN ({})", vals.join(", "))
            }
            Predicate::And(ps) => ps
                .iter()
                .map(|p| format!("({})", p.to_sql(alias)))
                .collect::<Vec<_>>()
                .join(" AND "),
            Predicate::Or(ps) => ps
                .iter()
                .map(|p| format!("({})", p.to_sql(alias)))
                .collect::<Vec<_>>()
                .join(" OR "),
            Predicate::Not(p) => format!("NOT ({})", p.to_sql(alias)),
        }
    }
}

fn sql_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::table::{Column, Table};

    fn table() -> Table {
        let mut t = Table::new(
            "event",
            vec![Column::new("id"), Column::new("op"), Column::new("bytes")],
        );
        t.insert(vec![Value::int(0), Value::str("read"), Value::int(100)]);
        t.insert(vec![Value::int(1), Value::str("write"), Value::int(5000)]);
        t
    }

    #[test]
    fn cmp_eval() {
        let t = table();
        let read = Predicate::eq("op", "read");
        assert!(read.eval(&t, t.row(0)));
        assert!(!read.eval(&t, t.row(1)));
        let big = Predicate::Cmp("bytes".into(), CmpOp::Gt, Value::int(1000));
        assert!(!big.eval(&t, t.row(0)));
        assert!(big.eval(&t, t.row(1)));
    }

    #[test]
    fn and_or_not() {
        let t = table();
        let p = Predicate::and(vec![
            Predicate::eq("op", "write"),
            Predicate::Cmp("bytes".into(), CmpOp::Ge, Value::int(5000)),
        ]);
        assert!(!p.eval(&t, t.row(0)));
        assert!(p.eval(&t, t.row(1)));
        let q = Predicate::Or(vec![
            Predicate::eq("op", "read"),
            Predicate::eq("op", "write"),
        ]);
        assert!(q.eval(&t, t.row(0)) && q.eval(&t, t.row(1)));
        let n = Predicate::Not(Box::new(Predicate::eq("op", "read")));
        assert!(!n.eval(&t, t.row(0)));
    }

    #[test]
    fn and_simplification() {
        assert_eq!(Predicate::and(vec![]), Predicate::True);
        assert_eq!(
            Predicate::and(vec![Predicate::True, Predicate::eq("op", "read")]),
            Predicate::eq("op", "read")
        );
    }

    #[test]
    fn constraint_counts() {
        assert_eq!(Predicate::True.constraint_count(), 0);
        assert_eq!(Predicate::eq("op", "read").constraint_count(), 1);
        let p = Predicate::And(vec![
            Predicate::eq("op", "read"),
            Predicate::like("name", "%tar%"),
        ]);
        assert_eq!(p.constraint_count(), 2);
    }

    #[test]
    fn pinned_values_finds_equalities() {
        let p = Predicate::And(vec![
            Predicate::like("name", "%x%"),
            Predicate::eq("op", "read"),
        ]);
        assert_eq!(p.pinned_values("op"), Some(vec![Value::str("read")]));
        assert_eq!(p.pinned_values("name"), None);
        let mut set = HashSet::new();
        set.insert(Value::int(3));
        let q = Predicate::InSet("subject".into(), set);
        assert_eq!(q.pinned_values("subject"), Some(vec![Value::int(3)]));
    }

    #[test]
    fn selectivity_monotonicity() {
        let eq = Predicate::eq("op", "read");
        let both = Predicate::And(vec![eq.clone(), Predicate::like("name", "%t%")]);
        assert!(both.selectivity() < eq.selectivity());
        assert!(Predicate::True.selectivity() >= 1.0);
    }

    #[test]
    fn sql_rendering() {
        let p = Predicate::And(vec![
            Predicate::eq("op", "read"),
            Predicate::like("name", "%/bin/tar%"),
        ]);
        assert_eq!(
            p.to_sql("e"),
            "(e.op = 'read') AND (e.name LIKE '%/bin/tar%')"
        );
        let quoted = Predicate::eq("name", "o'brien");
        assert_eq!(quoted.to_sql("f"), "f.name = 'o''brien'");
    }

    #[test]
    fn like_on_int_column_coerces() {
        let t = table();
        let p = Predicate::like("bytes", "50%");
        assert!(p.eval(&t, t.row(1)));
        assert!(!p.eval(&t, t.row(0)));
    }
}
