//! Variable-length path search over the event graph.
//!
//! Implements the semantics of TBQL's advanced syntax (§II-D):
//! `proc p ~>(m~n)[op] file f` matches a path of `m..=n` events from `p`
//! to `f` whose *final hop* has operation `op`. Traversal is
//! *time-monotone* by default — each hop must start after the previous hop
//! ends — because an information-flow chain through intermediate processes
//! is only meaningful forward in time.

use super::GraphDb;
use std::collections::HashSet;
use threatraptor_audit::entity::EntityId;
use threatraptor_audit::event::Operation;

/// A variable-length path query.
#[derive(Debug, Clone)]
pub struct PathQuery {
    /// Candidate source nodes (`None` = any node).
    pub src: Option<HashSet<EntityId>>,
    /// Candidate destination nodes (`None` = any node).
    pub dst: Option<HashSet<EntityId>>,
    /// Minimum number of hops (≥ 1).
    pub min_hops: u32,
    /// Maximum number of hops (inclusive).
    pub max_hops: u32,
    /// Required operation of the final hop (`None` = any).
    pub last_op: Option<Operation>,
    /// Allowed operations for non-final hops (`None` = any).
    pub mid_ops: Option<HashSet<Operation>>,
    /// Require strictly increasing time along the path.
    pub time_monotone: bool,
    /// Optional `[lo, hi]` window every hop must fall within.
    pub window: Option<(u64, u64)>,
    /// Safety cap on the number of returned matches.
    pub max_matches: usize,
}

impl Default for PathQuery {
    fn default() -> Self {
        PathQuery {
            src: None,
            dst: None,
            min_hops: 1,
            max_hops: 4,
            last_op: None,
            mid_ops: None,
            time_monotone: true,
            window: None,
            max_matches: 100_000,
        }
    }
}

/// One matched path: edge indexes from source to destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathMatch {
    /// Edge indexes, in hop order.
    pub edges: Vec<usize>,
}

impl PathMatch {
    /// Source node of the path.
    pub fn src(&self, g: &GraphDb) -> EntityId {
        g.edge(self.edges[0]).src
    }

    /// Destination node of the path.
    pub fn dst(&self, g: &GraphDb) -> EntityId {
        g.edge(*self.edges.last().expect("paths are non-empty")).dst
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the path has no hops (never produced by search).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

impl PathQuery {
    /// Runs the search, returning up to `max_matches` paths.
    pub fn search(&self, g: &GraphDb) -> Vec<PathMatch> {
        assert!(self.min_hops >= 1, "paths have at least one hop");
        assert!(self.min_hops <= self.max_hops, "min_hops > max_hops");
        let mut out = Vec::new();
        let sources: Vec<EntityId> = match &self.src {
            Some(set) => {
                let mut v: Vec<EntityId> = set.iter().copied().collect();
                v.sort_unstable();
                v
            }
            None => (0..g.node_count() as u32).map(EntityId).collect(),
        };
        let mut stack: Vec<usize> = Vec::with_capacity(self.max_hops as usize);
        for src in sources {
            if out.len() >= self.max_matches {
                break;
            }
            self.dfs(g, src, u64::MIN, &mut stack, &mut out);
        }
        out
    }

    fn dfs(
        &self,
        g: &GraphDb,
        node: EntityId,
        min_start: u64,
        stack: &mut Vec<usize>,
        out: &mut Vec<PathMatch>,
    ) {
        if out.len() >= self.max_matches || stack.len() == self.max_hops as usize {
            return;
        }
        for &edge_idx in g.out_edges(node) {
            if out.len() >= self.max_matches {
                return;
            }
            let edge = g.edge(edge_idx);
            if self.time_monotone && edge.start < min_start {
                continue;
            }
            if let Some((lo, hi)) = self.window {
                if edge.start < lo || edge.end > hi {
                    continue;
                }
            }
            // Cycle guard: an edge may appear at most once per path.
            if stack.contains(&edge_idx) {
                continue;
            }
            stack.push(edge_idx);
            let hops = stack.len() as u32;

            // Emit if this edge can terminate the path here.
            if hops >= self.min_hops
                && self.last_op.is_none_or(|op| edge.op == op)
                && self.dst.as_ref().is_none_or(|set| set.contains(&edge.dst))
            {
                out.push(PathMatch {
                    edges: stack.clone(),
                });
            }

            // Continue if this edge is usable as an intermediate hop.
            if hops < self.max_hops
                && self
                    .mid_ops
                    .as_ref()
                    .is_none_or(|ops| ops.contains(&edge.op))
            {
                let next_min = if self.time_monotone {
                    edge.end
                } else {
                    u64::MIN
                };
                self.dfs(g, edge.dst, next_min, stack, out);
            }
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_audit::event::{Event, EventId};

    /// A chain graph: 0 -read-> 1 -write-> 2 -read-> 3 -connect-> 4,
    /// with strictly increasing times.
    fn chain() -> GraphDb {
        let mk = |id: u32, s: u32, op, o: u32, t: u64| Event {
            id: EventId(id),
            subject: EntityId(s),
            op,
            object: EntityId(o),
            start: t,
            end: t + 5,
            bytes: 0,
            merged: 1,
            tag: None,
        };
        GraphDb::build(
            5,
            &[
                mk(0, 0, Operation::Read, 1, 10),
                mk(1, 1, Operation::Write, 2, 20),
                mk(2, 2, Operation::Read, 3, 30),
                mk(3, 3, Operation::Connect, 4, 40),
            ],
        )
    }

    fn set(ids: &[u32]) -> Option<HashSet<EntityId>> {
        Some(ids.iter().map(|&i| EntityId(i)).collect())
    }

    #[test]
    fn single_hop_any() {
        let g = chain();
        let q = PathQuery {
            max_hops: 1,
            ..PathQuery::default()
        };
        assert_eq!(q.search(&g).len(), 4);
    }

    #[test]
    fn fixed_endpoints_and_length() {
        let g = chain();
        let q = PathQuery {
            src: set(&[0]),
            dst: set(&[4]),
            min_hops: 4,
            max_hops: 4,
            ..PathQuery::default()
        };
        let paths = q.search(&g);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 4);
        assert_eq!(paths[0].src(&g), EntityId(0));
        assert_eq!(paths[0].dst(&g), EntityId(4));
        assert!(!paths[0].is_empty());
    }

    #[test]
    fn last_op_constrains_final_hop() {
        let g = chain();
        let q = PathQuery {
            src: set(&[0]),
            last_op: Some(Operation::Connect),
            min_hops: 1,
            max_hops: 4,
            ..PathQuery::default()
        };
        let paths = q.search(&g);
        // Only the full 4-hop path ends in connect.
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 4);
    }

    #[test]
    fn hop_bounds_respected() {
        let g = chain();
        let q = PathQuery {
            src: set(&[0]),
            min_hops: 2,
            max_hops: 3,
            ..PathQuery::default()
        };
        for p in q.search(&g) {
            assert!(p.len() >= 2 && p.len() <= 3);
        }
    }

    #[test]
    fn time_monotone_blocks_backwards_paths() {
        // 0 -> 1 at t=100, 1 -> 2 at t=10: not a causal chain.
        let mk = |id: u32, s: u32, o: u32, t: u64| Event {
            id: EventId(id),
            subject: EntityId(s),
            op: Operation::Read,
            object: EntityId(o),
            start: t,
            end: t + 1,
            bytes: 0,
            merged: 1,
            tag: None,
        };
        let g = GraphDb::build(3, &[mk(0, 0, 1, 100), mk(1, 1, 2, 10)]);
        let q = PathQuery {
            src: set(&[0]),
            dst: set(&[2]),
            min_hops: 2,
            max_hops: 2,
            ..PathQuery::default()
        };
        assert!(q.search(&g).is_empty());
        let relaxed = PathQuery {
            time_monotone: false,
            ..q
        };
        assert_eq!(relaxed.search(&g).len(), 1);
    }

    #[test]
    fn window_filters_hops() {
        let g = chain();
        let q = PathQuery {
            src: set(&[0]),
            window: Some((0, 18)),
            min_hops: 1,
            max_hops: 4,
            ..PathQuery::default()
        };
        // Only the first edge [10,15] fits in the window.
        let paths = q.search(&g);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 1);
    }

    #[test]
    fn mid_ops_restrict_interior() {
        let g = chain();
        // Interior hops must be writes; the only 2-hop path 0->2 has
        // interior read, so from 0 with min 2 nothing matches except
        // paths whose interior edges are writes.
        let mut mid = HashSet::new();
        mid.insert(Operation::Write);
        let q = PathQuery {
            src: set(&[1]),
            mid_ops: Some(mid),
            min_hops: 2,
            max_hops: 2,
            ..PathQuery::default()
        };
        // 1 -write-> 2 -read-> 3: interior hop (write) allowed, final read.
        let paths = q.search(&g);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].dst(&g), EntityId(3));
    }

    #[test]
    fn max_matches_caps_output() {
        // Star: node 0 has 10 parallel out edges to node 1.
        let mk = |id: u32, t: u64| Event {
            id: EventId(id),
            subject: EntityId(0),
            op: Operation::Read,
            object: EntityId(1),
            start: t,
            end: t + 1,
            bytes: 0,
            merged: 1,
            tag: None,
        };
        let events: Vec<Event> = (0..10).map(|i| mk(i, i as u64 * 10)).collect();
        let g = GraphDb::build(2, &events);
        let q = PathQuery {
            max_hops: 1,
            max_matches: 3,
            ..PathQuery::default()
        };
        assert_eq!(q.search(&g).len(), 3);
    }

    #[test]
    fn cycle_guard_terminates() {
        // 0 <-> 1 with alternating edges; unguarded DFS would loop.
        let mk = |id: u32, s: u32, o: u32, t: u64| Event {
            id: EventId(id),
            subject: EntityId(s),
            op: Operation::Read,
            object: EntityId(o),
            start: t,
            end: t + 1,
            bytes: 0,
            merged: 1,
            tag: None,
        };
        let g = GraphDb::build(2, &[mk(0, 0, 1, 10), mk(1, 1, 0, 20), mk(2, 0, 1, 30)]);
        let q = PathQuery {
            src: set(&[0]),
            min_hops: 1,
            max_hops: 6,
            ..PathQuery::default()
        };
        let paths = q.search(&g);
        // All paths are finite and each uses distinct edges.
        for p in &paths {
            let uniq: HashSet<_> = p.edges.iter().collect();
            assert_eq!(uniq.len(), p.edges.len());
        }
        assert!(!paths.is_empty());
    }

    #[test]
    #[should_panic(expected = "min_hops > max_hops")]
    fn invalid_bounds_panic() {
        let q = PathQuery {
            min_hops: 3,
            max_hops: 2,
            ..PathQuery::default()
        };
        q.search(&chain());
    }
}
