//! Embedded property-graph backend (the Neo4j stand-in).
//!
//! Entities are nodes and events are edges (§II-B). The graph keeps
//! time-sorted adjacency lists per node, which [`PathQuery`] uses for
//! variable-length path search — the compile target for TBQL's
//! `proc p ~>(2~4)[read] file f` patterns.

mod path;

pub use path::{PathMatch, PathQuery};

use threatraptor_audit::entity::EntityId;
use threatraptor_audit::event::{Event, EventId, Operation};

/// An edge in the graph: one system event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphEdge {
    /// Original event id (stable across CPR).
    pub event: EventId,
    /// Position of the event in the ingested event vector.
    pub event_pos: usize,
    /// Source node (event subject).
    pub src: EntityId,
    /// Destination node (event object).
    pub dst: EntityId,
    /// Operation.
    pub op: Operation,
    /// Start timestamp.
    pub start: u64,
    /// End timestamp.
    pub end: u64,
}

/// The property graph: nodes are entity ids `0..node_count`, edges are
/// events, adjacency is sorted by edge start time.
#[derive(Debug, Clone, Default)]
pub struct GraphDb {
    node_count: usize,
    edges: Vec<GraphEdge>,
    out: Vec<Vec<usize>>,
    inn: Vec<Vec<usize>>,
}

impl GraphDb {
    /// Builds the graph from an event slice over `node_count` entities.
    pub fn build(node_count: usize, events: &[Event]) -> GraphDb {
        let mut edges = Vec::with_capacity(events.len());
        let mut out = vec![Vec::new(); node_count];
        let mut inn = vec![Vec::new(); node_count];
        for (pos, ev) in events.iter().enumerate() {
            let edge_idx = edges.len();
            edges.push(GraphEdge {
                event: ev.id,
                event_pos: pos,
                src: ev.subject,
                dst: ev.object,
                op: ev.op,
                start: ev.start,
                end: ev.end,
            });
            out[ev.subject.index()].push(edge_idx);
            inn[ev.object.index()].push(edge_idx);
        }
        // Sort adjacency by start time for time-monotone traversal.
        for adj in out.iter_mut().chain(inn.iter_mut()) {
            adj.sort_by_key(|&e| edges[e].start);
        }
        GraphDb {
            node_count,
            edges,
            out,
            inn,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Edge accessor.
    #[inline]
    pub fn edge(&self, idx: usize) -> &GraphEdge {
        &self.edges[idx]
    }

    /// Outgoing edge indexes of a node, sorted by start time.
    #[inline]
    pub fn out_edges(&self, node: EntityId) -> &[usize] {
        &self.out[node.index()]
    }

    /// Incoming edge indexes of a node, sorted by start time.
    #[inline]
    pub fn in_edges(&self, node: EntityId) -> &[usize] {
        &self.inn[node.index()]
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, node: EntityId) -> usize {
        self.out[node.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threatraptor_audit::event::Event;

    fn ev(id: u32, subject: u32, op: Operation, object: u32, start: u64) -> Event {
        Event {
            id: EventId(id),
            subject: EntityId(subject),
            op,
            object: EntityId(object),
            start,
            end: start + 1,
            bytes: 0,
            merged: 1,
            tag: None,
        }
    }

    #[test]
    fn build_and_adjacency() {
        let events = vec![
            ev(0, 0, Operation::Read, 1, 100),
            ev(1, 0, Operation::Write, 2, 50),
            ev(2, 3, Operation::Read, 1, 10),
        ];
        let g = GraphDb::build(4, &events);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        // Out edges of node 0 sorted by time: write@50 then read@100.
        let out0: Vec<u64> = g
            .out_edges(EntityId(0))
            .iter()
            .map(|&e| g.edge(e).start)
            .collect();
        assert_eq!(out0, vec![50, 100]);
        assert_eq!(g.out_degree(EntityId(0)), 2);
        // In edges of node 1: events 2 (t=10) then 0 (t=100).
        let in1: Vec<u32> = g
            .in_edges(EntityId(1))
            .iter()
            .map(|&e| g.edge(e).event.0)
            .collect();
        assert_eq!(in1, vec![2, 0]);
        assert!(g.out_edges(EntityId(1)).is_empty());
    }

    #[test]
    fn empty_graph() {
        let g = GraphDb::build(0, &[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
