//! Causality-Preserved Reduction (CPR).
//!
//! The paper reduces storage by "merg[ing] excessive events between the
//! same pair of entities" using the technique of Xu et al., *High Fidelity
//! Data Reduction for Big Data Security Dependency Analyses* (CCS'16)
//! (§II-B). The preserved property is *causality*: merging a run of events
//! between the same `(subject, object, operation)` must not change the
//! happens-before relation between any event and the events incident on
//! either endpoint.
//!
//! This implementation uses the conservative sufficient condition from the
//! CCS'16 paper: a run of same-key events is merged only while **no other
//! event touches either endpoint** between the run's first and last event.
//! Any interleaving event on the subject or the object closes the run, so
//! every outside observer sees exactly the same ordering before and after
//! reduction.

use std::collections::HashMap;
use threatraptor_audit::entity::EntityId;
use threatraptor_audit::event::{Event, Operation};

/// Key identifying a mergeable run.
type RunKey = (EntityId, EntityId, Operation);

/// Summary of one reduction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionStats {
    /// Events before reduction.
    pub before: usize,
    /// Events after reduction.
    pub after: usize,
}

impl ReductionStats {
    /// Reduction factor (`before / after`), or 1.0 on empty input.
    pub fn factor(&self) -> f64 {
        if self.after == 0 {
            1.0
        } else {
            self.before as f64 / self.after as f64
        }
    }

    /// Fraction of events removed, in `[0, 1)`.
    pub fn removed_ratio(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            (self.before - self.after) as f64 / self.before as f64
        }
    }
}

/// The total order CPR processes events in (and sorts its output by).
#[inline]
fn sort_key(e: &Event) -> (u64, u64, threatraptor_audit::event::EventId) {
    (e.start, e.end, e.id)
}

/// Upper bound on a merged event's total time span (`end - start`, in the
/// log's time unit). A run whose next constituent would stretch it past
/// this bound is closed and a fresh run started.
///
/// Unbounded runs are correct for batch reduction but hostile to
/// streaming: a quiet entity pair can keep one run open for the entire
/// capture, pinning the ingest frontier's watermark at the run's first
/// event and making the open window unboundedly large. The cap makes the
/// frontier sealable — every open run starts within `MAX_RUN_SPAN` of the
/// stream's high-water mark — while being far above observed merged-run
/// spans (simulator workloads top out around `2^23`), so it costs no
/// measurable reduction. Batch and incremental reduction apply the same
/// bound, keeping their outputs byte-identical.
pub const MAX_RUN_SPAN: u64 = 1 << 24;

/// The CPR state machine: events are pushed in [`sort_key`] order, merged
/// runs accumulate in `open`, and closed runs spill into the caller's
/// output buffer. Extracted from the batch [`reduce`] loop so the
/// streaming [`IncrementalReducer`] evolves *the same state in the same
/// order* — byte parity between batch and incremental reduction holds by
/// construction, not by re-implementation.
#[derive(Debug, Clone, Default)]
struct CprMachine {
    /// seq of the most recent activity touching each entity.
    last_touch: HashMap<EntityId, u64>,
    /// Open run per key: (accumulated event, seq of its last constituent).
    open: HashMap<RunKey, (Event, u64)>,
    seq: u64,
}

impl CprMachine {
    /// Feeds one event (the next in sort order); closed runs and
    /// non-mergeable events are appended to `out` in closing order (not
    /// globally sorted — callers sort the final output).
    fn push(&mut self, ev: &Event, out: &mut Vec<Event>) {
        self.seq += 1;
        let seq = self.seq;
        let key: RunKey = (ev.subject, ev.op, ev.object).into_run_key();

        if ev.op.cpr_mergeable() {
            if let Some((acc, last_seq)) = self.open.get_mut(&key) {
                let subj_quiet = self.last_touch.get(&ev.subject) == Some(last_seq);
                let obj_quiet = self.last_touch.get(&ev.object) == Some(last_seq);
                let within_span = acc.end.max(ev.end) - acc.start <= MAX_RUN_SPAN;
                if subj_quiet && obj_quiet && within_span && acc.tag == ev.tag {
                    // Extend the run.
                    acc.end = acc.end.max(ev.end);
                    acc.bytes += ev.bytes;
                    acc.merged += ev.merged;
                    *last_seq = seq;
                    self.last_touch.insert(ev.subject, seq);
                    self.last_touch.insert(ev.object, seq);
                    return;
                }
            }
            // Start a new run (flushing any stale run under this key).
            if let Some((acc, _)) = self.open.remove(&key) {
                out.push(acc);
            }
            self.open.insert(key, (ev.clone(), seq));
        } else {
            // Non-mergeable event: flush the run under this key, if any,
            // then emit as-is.
            if let Some((acc, _)) = self.open.remove(&key) {
                out.push(acc);
            }
            out.push(ev.clone());
        }
        self.last_touch.insert(ev.subject, seq);
        self.last_touch.insert(ev.object, seq);
    }

    /// Closes every open run into `out` (end of stream).
    fn flush(&mut self, out: &mut Vec<Event>) {
        for (_, (acc, _)) in self.open.drain() {
            out.push(acc);
        }
    }

    /// Closes runs that can never accept another constituent: input is
    /// processed in start order, so any future event starts at or after
    /// `now`, and extending a run whose first constituent is more than
    /// [`MAX_RUN_SPAN`] behind `now` would exceed the span bound and be
    /// refused anyway. Closing them early changes *when* they reach the
    /// output buffer, never what the (finally sorted) output contains —
    /// which is why only the incremental reducer bothers: it unpins the
    /// sealing watermark from dormant runs.
    fn expire(&mut self, now: u64, out: &mut Vec<Event>) {
        self.open.retain(|_, (acc, _)| {
            if now.saturating_sub(acc.start) > MAX_RUN_SPAN {
                out.push(acc.clone());
                false
            } else {
                true
            }
        });
    }

    /// Smallest output start among still-open runs (a run's output keeps
    /// its first constituent's start, so this is fixed per run).
    fn open_min_start(&self) -> Option<u64> {
        self.open.values().map(|(acc, _)| acc.start).min()
    }
}

/// Applies CPR to an event stream. Returns the reduced stream (sorted by
/// start time) and the reduction statistics.
///
/// Merging rules:
/// * only data-transfer operations ([`Operation::cpr_mergeable`]) merge —
///   lifecycle events (fork/execute/connect/…) are always preserved;
/// * only events with identical ground-truth tags merge (evaluation
///   metadata must stay exact);
/// * a merged event keeps the **first** constituent's id and start time,
///   extends `end` to the last constituent, sums `bytes`, and counts
///   constituents in `merged`.
pub fn reduce(events: &[Event]) -> (Vec<Event>, ReductionStats) {
    let before = events.len();

    // Process in time order.
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| sort_key(&events[i]));

    let mut machine = CprMachine::default();
    let mut out: Vec<Event> = Vec::with_capacity(events.len());
    for &i in &order {
        machine.push(&events[i], &mut out);
    }
    machine.flush(&mut out);
    out.sort_by_key(sort_key);

    let stats = ReductionStats {
        before,
        after: out.len(),
    };
    (out, stats)
}

/// Incremental CPR over an append-only event stream — the ingest-frontier
/// reducer of [`crate::stream::StreamingStore`].
///
/// The batch [`reduce`] sorts the whole stream by `(start, end, id)` and
/// runs the [`CprMachine`] over it once. This type runs the *same*
/// machine over a stream that arrives in chunks, holding back just enough
/// input to preserve the exact processing order:
///
/// * events whose start is strictly below the stream's high-water start
///   can never be preceded by future input (appends are start-ordered
///   across chunks — true of audit streams and the raw-log replay feed),
///   so they are fed to the machine immediately, in sorted order;
/// * events *at* the high-water start stay staged — a later chunk may
///   still deliver ties that sort before them;
/// * closed runs accumulate in `done`; a closed output becomes **stable**
///   (safe to seal into an immutable shard) only when its start is
///   strictly below the [`IncrementalReducer::watermark`] — the smallest
///   start any future output could have. Sealing above the watermark
///   could split a run that batch CPR would merge, breaking parity.
///
/// With `use_cpr = false` the reducer is a pass-through that preserves
/// arrival order (matching [`reduce_if`] with `use_cpr = false`), and
/// every appended event is immediately stable.
///
/// For start-ordered appends, `sealed outputs ++ visible()` is
/// byte-identical to `reduce(all appended events).0` at every point in
/// the stream. Out-of-order stragglers (an event starting before the
/// high-water mark) are still ingested — they are processed on arrival —
/// but exact batch parity is no longer guaranteed past that point.
#[derive(Debug, Clone)]
pub struct IncrementalReducer {
    use_cpr: bool,
    machine: CprMachine,
    /// Input at the high-water start, not yet safely orderable.
    staged: Vec<Event>,
    /// Closed outputs not yet taken by a seal, in closing order.
    done: Vec<Event>,
    /// High-water start time over all appended input.
    max_start: u64,
    /// Total events appended (the `before` side of the stats).
    before: usize,
}

impl IncrementalReducer {
    /// An empty reducer. `use_cpr = false` gives order-preserving
    /// pass-through (identity reduction).
    pub fn new(use_cpr: bool) -> IncrementalReducer {
        IncrementalReducer {
            use_cpr,
            machine: CprMachine::default(),
            staged: Vec::new(),
            done: Vec::new(),
            max_start: 0,
            before: 0,
        }
    }

    /// Appends a chunk of events (any order within the chunk; chunks
    /// themselves must be non-decreasing in start time for exact batch
    /// parity).
    pub fn append(&mut self, events: &[Event]) {
        self.before += events.len();
        if !self.use_cpr {
            self.done.extend_from_slice(events);
            return;
        }
        self.staged.extend_from_slice(events);
        self.max_start = self
            .staged
            .iter()
            .map(|e| e.start)
            .fold(self.max_start, u64::max);
        // Everything strictly below the high-water start is now safely
        // orderable: feed it to the machine in global sort order.
        self.staged.sort_by_key(sort_key);
        let ready = self.staged.partition_point(|e| e.start < self.max_start);
        for ev in self.staged.drain(..ready) {
            self.machine.push(&ev, &mut self.done);
        }
        // Close runs too old to ever extend, so dormant entity pairs do
        // not pin the watermark.
        self.machine.expire(self.max_start, &mut self.done);
    }

    /// The start time below which every output is final: no open run, no
    /// staged event, and (for start-ordered appends) no future input can
    /// produce an output starting earlier.
    pub fn watermark(&self) -> u64 {
        if !self.use_cpr {
            return u64::MAX;
        }
        self.machine
            .open_min_start()
            .map_or(self.max_start, |open| open.min(self.max_start))
    }

    /// Takes the stable prefix — closed outputs starting strictly below
    /// the watermark, sorted — leaving everything else open. This is the
    /// seal operation's input; the returned slice is an exact prefix of
    /// what batch [`reduce`] over the full stream will eventually emit.
    pub fn take_stable(&mut self) -> Vec<Event> {
        if !self.use_cpr {
            // Pass-through: arrival order is the output order.
            return std::mem::take(&mut self.done);
        }
        let wm = self.watermark();
        let mut stable = Vec::new();
        self.done.retain(|e| {
            if e.start < wm {
                stable.push(e.clone());
                false
            } else {
                true
            }
        });
        stable.sort_by_key(sort_key);
        stable
    }

    /// The open window as batch CPR would emit it if the stream ended
    /// now: unsealed closed outputs, open-run accumulators, and staged
    /// input, fully reduced and sorted. Non-destructive — appending more
    /// events afterwards continues exactly where the stream left off.
    pub fn visible(&self) -> Vec<Event> {
        if !self.use_cpr {
            return self.done.clone();
        }
        let mut machine = self.machine.clone();
        let mut out = self.done.clone();
        let mut staged = self.staged.clone();
        staged.sort_by_key(sort_key);
        for ev in &staged {
            machine.push(ev, &mut out);
        }
        machine.flush(&mut out);
        out.sort_by_key(sort_key);
        out
    }

    /// Number of events currently in the open window — exactly
    /// `visible().len()`: staged frontier input is run through a cloned
    /// machine so ties that will merge are counted once, not twice. Cost
    /// is proportional to the *staged* set (same-start frontier events),
    /// not the whole window.
    pub fn open_len(&self) -> usize {
        if !self.use_cpr || self.staged.is_empty() {
            return self.done.len() + self.machine.open.len();
        }
        let mut machine = self.machine.clone();
        let mut out = Vec::new();
        let mut staged = self.staged.clone();
        staged.sort_by_key(sort_key);
        for ev in &staged {
            machine.push(ev, &mut out);
        }
        self.done.len() + out.len() + machine.open.len()
    }

    /// Time span `(min start, max start)` of the open window, or `None`
    /// when it is empty.
    pub fn open_span(&self) -> Option<(u64, u64)> {
        let lo = self
            .done
            .iter()
            .map(|e| e.start)
            .chain(self.machine.open.values().map(|(acc, _)| acc.start))
            .chain(self.staged.iter().map(|e| e.start))
            .min()?;
        Some((lo, self.max_start.max(lo)))
    }

    /// Total events appended so far (the `before` of [`ReductionStats`]).
    pub fn appended(&self) -> usize {
        self.before
    }
}

/// Applies CPR when `use_cpr`, otherwise passes the stream through with
/// identity statistics — the shared ingestion preamble of
/// [`crate::store::AuditStore::ingest`] and
/// [`crate::sharded::ShardedStore::ingest`].
pub fn reduce_if(events: &[Event], use_cpr: bool) -> (Vec<Event>, ReductionStats) {
    if use_cpr {
        reduce(events)
    } else {
        let stats = ReductionStats {
            before: events.len(),
            after: events.len(),
        };
        (events.to_vec(), stats)
    }
}

/// Helper converting the natural tuple order into the run key layout.
trait IntoRunKey {
    fn into_run_key(self) -> RunKey;
}

impl IntoRunKey for (EntityId, Operation, EntityId) {
    fn into_run_key(self) -> RunKey {
        (self.0, self.2, self.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use threatraptor_audit::event::{AttackTag, EventId};

    fn ev(id: u32, s: u32, op: Operation, o: u32, start: u64) -> Event {
        Event {
            id: EventId(id),
            subject: EntityId(s),
            op,
            object: EntityId(o),
            start,
            end: start + 2,
            bytes: 10,
            merged: 1,
            tag: None,
        }
    }

    #[test]
    fn quiet_burst_merges_to_one() {
        let events: Vec<Event> = (0..5)
            .map(|i| ev(i, 0, Operation::Read, 1, i as u64 * 10))
            .collect();
        let (out, stats) = reduce(&events);
        assert_eq!(out.len(), 1);
        assert_eq!(stats.before, 5);
        assert_eq!(stats.after, 1);
        assert_eq!(out[0].merged, 5);
        assert_eq!(out[0].bytes, 50);
        assert_eq!(out[0].start, 0);
        assert_eq!(out[0].end, 42);
        assert_eq!(out[0].id, EventId(0), "keeps first constituent id");
        assert!((stats.factor() - 5.0).abs() < 1e-9);
        assert!((stats.removed_ratio() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn interleaving_event_on_subject_breaks_run() {
        let events = vec![
            ev(0, 0, Operation::Read, 1, 0),
            ev(1, 0, Operation::Read, 1, 10),
            // Subject 0 writes elsewhere: breaks the read run.
            ev(2, 0, Operation::Write, 2, 20),
            ev(3, 0, Operation::Read, 1, 30),
        ];
        let (out, _) = reduce(&events);
        // reads merged [0,1], the write, read [3] alone.
        assert_eq!(out.len(), 3);
        let merged_read = out.iter().find(|e| e.merged == 2).unwrap();
        assert_eq!(merged_read.op, Operation::Read);
    }

    #[test]
    fn interleaving_event_on_object_breaks_run() {
        let events = vec![
            ev(0, 0, Operation::Read, 1, 0),
            // Another process writes the same file: order must survive.
            ev(1, 2, Operation::Write, 1, 10),
            ev(2, 0, Operation::Read, 1, 20),
        ];
        let (out, stats) = reduce(&events);
        assert_eq!(out.len(), 3, "read-write-read must not collapse");
        assert_eq!(stats.after, 3);
    }

    #[test]
    fn non_mergeable_ops_always_preserved() {
        let events = vec![
            ev(0, 0, Operation::Connect, 1, 0),
            ev(1, 0, Operation::Connect, 1, 10),
            ev(2, 0, Operation::Fork, 2, 20),
        ];
        let (out, _) = reduce(&events);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn different_tags_do_not_merge() {
        let mut a = ev(0, 0, Operation::Read, 1, 0);
        let mut b = ev(1, 0, Operation::Read, 1, 10);
        a.tag = Some(AttackTag {
            case: "x".into(),
            step: 1,
        });
        b.tag = Some(AttackTag {
            case: "x".into(),
            step: 2,
        });
        let (out, _) = reduce(&[a, b]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn distinct_pairs_merge_independently() {
        let events = vec![
            ev(0, 0, Operation::Read, 1, 0),
            ev(1, 2, Operation::Read, 3, 5),
            ev(2, 0, Operation::Read, 1, 10),
            ev(3, 2, Operation::Read, 3, 15),
        ];
        let (out, _) = reduce(&events);
        // Each pair's run is uninterrupted on its own endpoints.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| e.merged == 2));
    }

    #[test]
    fn empty_input() {
        let (out, stats) = reduce(&[]);
        assert!(out.is_empty());
        assert_eq!(stats.factor(), 1.0);
        assert_eq!(stats.removed_ratio(), 0.0);
    }

    #[test]
    fn output_sorted_by_start() {
        let events = vec![
            ev(0, 0, Operation::Read, 1, 50),
            ev(1, 2, Operation::Write, 3, 10),
            ev(2, 4, Operation::Fork, 5, 30),
        ];
        let (out, _) = reduce(&events);
        for w in out.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    /// Strategy: small random event streams over few entities.
    fn arb_events() -> impl Strategy<Value = Vec<Event>> {
        prop::collection::vec(
            (
                0u32..4, // subject
                0u32..4, // object
                prop::sample::select(vec![
                    Operation::Read,
                    Operation::Write,
                    Operation::Fork,
                    Operation::Send,
                ]),
            ),
            0..40,
        )
        .prop_map(|specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (s, o, op))| {
                    let o = if s == o { (o + 1) % 4 } else { o };
                    ev(i as u32, s, op, o, i as u64 * 10)
                })
                .collect()
        })
    }

    proptest! {
        /// The defining invariant: for every merged event, no *other*
        /// output event touching either endpoint overlaps its window.
        #[test]
        fn no_foreign_activity_inside_merged_windows(events in arb_events()) {
            let (out, stats) = reduce(&events);
            prop_assert!(stats.after <= stats.before);
            // Total constituents and bytes are conserved.
            let merged_total: u32 = out.iter().map(|e| e.merged).sum();
            prop_assert_eq!(merged_total as usize, events.len());
            let bytes_in: u64 = events.iter().map(|e| e.bytes).sum();
            let bytes_out: u64 = out.iter().map(|e| e.bytes).sum();
            prop_assert_eq!(bytes_in, bytes_out);

            for m in out.iter().filter(|e| e.merged > 1) {
                for other in events.iter() {
                    // Skip constituents of m itself.
                    let same_key = other.subject == m.subject
                        && other.object == m.object
                        && other.op == m.op
                        && other.start >= m.start
                        && other.end <= m.end;
                    if same_key {
                        continue;
                    }
                    let shares_endpoint = other.subject == m.subject
                        || other.subject == m.object
                        || other.object == m.subject
                        || other.object == m.object;
                    if shares_endpoint {
                        let strictly_inside = other.start > m.start && other.end < m.end;
                        prop_assert!(
                            !strictly_inside,
                            "event {:?} interleaves merged window [{}, {}]",
                            other.id, m.start, m.end
                        );
                    }
                }
            }
        }

        /// CPR is idempotent: reducing a reduced stream changes nothing.
        #[test]
        fn reduction_is_idempotent(events in arb_events()) {
            let (once, _) = reduce(&events);
            let (twice, stats) = reduce(&once);
            prop_assert_eq!(stats.before, stats.after);
            prop_assert_eq!(once, twice);
        }

        /// Incremental CPR parity: for any chunking of a start-ordered
        /// stream, with seals interleaved at arbitrary points, the sealed
        /// outputs followed by the open window are byte-identical to one
        /// batch reduction of the whole stream.
        #[test]
        fn incremental_matches_batch(events in arb_events(), chunk in 1usize..17) {
            let (batch, stats) = reduce(&events);
            let mut inc = IncrementalReducer::new(true);
            let mut sealed: Vec<Event> = Vec::new();
            for (i, c) in events.chunks(chunk).enumerate() {
                inc.append(c);
                if i % 2 == 0 {
                    sealed.extend(inc.take_stable());
                }
            }
            let mut all = sealed;
            all.extend(inc.visible());
            prop_assert_eq!(all, batch);
            prop_assert_eq!(inc.appended(), stats.before);
        }
    }

    #[test]
    fn span_cap_closes_oversized_runs() {
        // Two quiet same-key events further apart than the span cap must
        // not merge — in batch or incrementally.
        let far = MAX_RUN_SPAN + 100;
        let events = vec![
            ev(0, 0, Operation::Read, 1, 0),
            ev(1, 0, Operation::Read, 1, far),
        ];
        let (out, _) = reduce(&events);
        assert_eq!(out.len(), 2, "span cap must split the run");

        let mut inc = IncrementalReducer::new(true);
        inc.append(&events);
        assert_eq!(inc.visible(), out);
    }

    #[test]
    fn dormant_runs_do_not_pin_the_watermark() {
        let mut inc = IncrementalReducer::new(true);
        // A quiet pair opens a run at t=0...
        inc.append(&[
            ev(0, 0, Operation::Read, 1, 0),
            ev(1, 0, Operation::Read, 1, 10),
        ]);
        // ...then goes dormant while unrelated traffic streams past the
        // span cap. The run must expire and the watermark advance.
        let far = MAX_RUN_SPAN + 1_000;
        inc.append(&[ev(2, 2, Operation::Write, 3, far)]);
        inc.append(&[ev(3, 2, Operation::Write, 3, far + 10)]);
        assert!(
            inc.watermark() >= far,
            "watermark {} pinned",
            inc.watermark()
        );
        let stable = inc.take_stable();
        assert!(
            stable.iter().any(|e| e.merged == 2),
            "the expired run must be sealable: {stable:?}"
        );
    }

    #[test]
    fn open_len_counts_staged_ties_after_merging() {
        // Two same-start mergeable events both stay staged at the
        // high-water mark; they will merge, so the open window holds one
        // event, not two — open_len must agree with visible().
        let mut a = ev(0, 0, Operation::Read, 1, 10);
        let mut b = ev(1, 0, Operation::Read, 1, 10);
        a.end = 14;
        b.end = 12;
        let mut inc = IncrementalReducer::new(true);
        inc.append(&[a]);
        inc.append(&[b]);
        assert_eq!(inc.visible().len(), 1);
        assert_eq!(inc.open_len(), inc.visible().len());
    }

    #[test]
    fn passthrough_reducer_preserves_arrival_order() {
        // With CPR off, the reducer is an order-preserving identity —
        // matching `reduce_if(_, false)`.
        let events = vec![
            ev(0, 0, Operation::Read, 1, 50),
            ev(1, 2, Operation::Write, 3, 10),
            ev(2, 4, Operation::Fork, 5, 30),
        ];
        let mut inc = IncrementalReducer::new(false);
        inc.append(&events[..2]);
        inc.append(&events[2..]);
        assert_eq!(inc.visible(), events);
        assert_eq!(inc.watermark(), u64::MAX);
        assert_eq!(inc.take_stable(), events);
        assert_eq!(inc.open_len(), 0);
        assert_eq!(inc.appended(), 3);
    }
}
