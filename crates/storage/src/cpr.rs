//! Causality-Preserved Reduction (CPR).
//!
//! The paper reduces storage by "merg[ing] excessive events between the
//! same pair of entities" using the technique of Xu et al., *High Fidelity
//! Data Reduction for Big Data Security Dependency Analyses* (CCS'16)
//! (§II-B). The preserved property is *causality*: merging a run of events
//! between the same `(subject, object, operation)` must not change the
//! happens-before relation between any event and the events incident on
//! either endpoint.
//!
//! This implementation uses the conservative sufficient condition from the
//! CCS'16 paper: a run of same-key events is merged only while **no other
//! event touches either endpoint** between the run's first and last event.
//! Any interleaving event on the subject or the object closes the run, so
//! every outside observer sees exactly the same ordering before and after
//! reduction.

use std::collections::HashMap;
use threatraptor_audit::entity::EntityId;
use threatraptor_audit::event::{Event, Operation};

/// Key identifying a mergeable run.
type RunKey = (EntityId, EntityId, Operation);

/// Summary of one reduction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionStats {
    /// Events before reduction.
    pub before: usize,
    /// Events after reduction.
    pub after: usize,
}

impl ReductionStats {
    /// Reduction factor (`before / after`), or 1.0 on empty input.
    pub fn factor(&self) -> f64 {
        if self.after == 0 {
            1.0
        } else {
            self.before as f64 / self.after as f64
        }
    }

    /// Fraction of events removed, in `[0, 1)`.
    pub fn removed_ratio(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            (self.before - self.after) as f64 / self.before as f64
        }
    }
}

/// Applies CPR to an event stream. Returns the reduced stream (sorted by
/// start time) and the reduction statistics.
///
/// Merging rules:
/// * only data-transfer operations ([`Operation::cpr_mergeable`]) merge —
///   lifecycle events (fork/execute/connect/…) are always preserved;
/// * only events with identical ground-truth tags merge (evaluation
///   metadata must stay exact);
/// * a merged event keeps the **first** constituent's id and start time,
///   extends `end` to the last constituent, sums `bytes`, and counts
///   constituents in `merged`.
pub fn reduce(events: &[Event]) -> (Vec<Event>, ReductionStats) {
    let before = events.len();

    // Process in time order.
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| (events[i].start, events[i].end, events[i].id));

    // seq of the most recent output-event activity touching each entity.
    let mut last_touch: HashMap<EntityId, u64> = HashMap::new();
    // Open run per key: (accumulated event, seq of its last constituent).
    let mut open: HashMap<RunKey, (Event, u64)> = HashMap::new();
    let mut out: Vec<Event> = Vec::with_capacity(events.len());
    let mut seq: u64 = 0;

    for &i in &order {
        let ev = &events[i];
        seq += 1;
        let key: RunKey = (ev.subject, ev.op, ev.object).into_run_key();

        let mergeable = ev.op.cpr_mergeable();
        if mergeable {
            if let Some((acc, last_seq)) = open.get_mut(&key) {
                let subj_quiet = last_touch.get(&ev.subject) == Some(last_seq);
                let obj_quiet = last_touch.get(&ev.object) == Some(last_seq);
                if subj_quiet && obj_quiet && acc.tag == ev.tag {
                    // Extend the run.
                    acc.end = acc.end.max(ev.end);
                    acc.bytes += ev.bytes;
                    acc.merged += ev.merged;
                    *last_seq = seq;
                    last_touch.insert(ev.subject, seq);
                    last_touch.insert(ev.object, seq);
                    continue;
                }
            }
            // Start a new run (flushing any stale run under this key).
            if let Some((acc, _)) = open.remove(&key) {
                out.push(acc);
            }
            open.insert(key, (ev.clone(), seq));
        } else {
            // Non-mergeable event: flush the run under this key, if any,
            // then emit as-is.
            if let Some((acc, _)) = open.remove(&key) {
                out.push(acc);
            }
            out.push(ev.clone());
        }
        last_touch.insert(ev.subject, seq);
        last_touch.insert(ev.object, seq);
    }

    // Flush all remaining runs.
    for (_, (acc, _)) in open.drain() {
        out.push(acc);
    }
    out.sort_by_key(|e| (e.start, e.end, e.id));

    let stats = ReductionStats {
        before,
        after: out.len(),
    };
    (out, stats)
}

/// Applies CPR when `use_cpr`, otherwise passes the stream through with
/// identity statistics — the shared ingestion preamble of
/// [`crate::store::AuditStore::ingest`] and
/// [`crate::sharded::ShardedStore::ingest`].
pub fn reduce_if(events: &[Event], use_cpr: bool) -> (Vec<Event>, ReductionStats) {
    if use_cpr {
        reduce(events)
    } else {
        let stats = ReductionStats {
            before: events.len(),
            after: events.len(),
        };
        (events.to_vec(), stats)
    }
}

/// Helper converting the natural tuple order into the run key layout.
trait IntoRunKey {
    fn into_run_key(self) -> RunKey;
}

impl IntoRunKey for (EntityId, Operation, EntityId) {
    fn into_run_key(self) -> RunKey {
        (self.0, self.2, self.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use threatraptor_audit::event::{AttackTag, EventId};

    fn ev(id: u32, s: u32, op: Operation, o: u32, start: u64) -> Event {
        Event {
            id: EventId(id),
            subject: EntityId(s),
            op,
            object: EntityId(o),
            start,
            end: start + 2,
            bytes: 10,
            merged: 1,
            tag: None,
        }
    }

    #[test]
    fn quiet_burst_merges_to_one() {
        let events: Vec<Event> = (0..5)
            .map(|i| ev(i, 0, Operation::Read, 1, i as u64 * 10))
            .collect();
        let (out, stats) = reduce(&events);
        assert_eq!(out.len(), 1);
        assert_eq!(stats.before, 5);
        assert_eq!(stats.after, 1);
        assert_eq!(out[0].merged, 5);
        assert_eq!(out[0].bytes, 50);
        assert_eq!(out[0].start, 0);
        assert_eq!(out[0].end, 42);
        assert_eq!(out[0].id, EventId(0), "keeps first constituent id");
        assert!((stats.factor() - 5.0).abs() < 1e-9);
        assert!((stats.removed_ratio() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn interleaving_event_on_subject_breaks_run() {
        let events = vec![
            ev(0, 0, Operation::Read, 1, 0),
            ev(1, 0, Operation::Read, 1, 10),
            // Subject 0 writes elsewhere: breaks the read run.
            ev(2, 0, Operation::Write, 2, 20),
            ev(3, 0, Operation::Read, 1, 30),
        ];
        let (out, _) = reduce(&events);
        // reads merged [0,1], the write, read [3] alone.
        assert_eq!(out.len(), 3);
        let merged_read = out.iter().find(|e| e.merged == 2).unwrap();
        assert_eq!(merged_read.op, Operation::Read);
    }

    #[test]
    fn interleaving_event_on_object_breaks_run() {
        let events = vec![
            ev(0, 0, Operation::Read, 1, 0),
            // Another process writes the same file: order must survive.
            ev(1, 2, Operation::Write, 1, 10),
            ev(2, 0, Operation::Read, 1, 20),
        ];
        let (out, stats) = reduce(&events);
        assert_eq!(out.len(), 3, "read-write-read must not collapse");
        assert_eq!(stats.after, 3);
    }

    #[test]
    fn non_mergeable_ops_always_preserved() {
        let events = vec![
            ev(0, 0, Operation::Connect, 1, 0),
            ev(1, 0, Operation::Connect, 1, 10),
            ev(2, 0, Operation::Fork, 2, 20),
        ];
        let (out, _) = reduce(&events);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn different_tags_do_not_merge() {
        let mut a = ev(0, 0, Operation::Read, 1, 0);
        let mut b = ev(1, 0, Operation::Read, 1, 10);
        a.tag = Some(AttackTag {
            case: "x".into(),
            step: 1,
        });
        b.tag = Some(AttackTag {
            case: "x".into(),
            step: 2,
        });
        let (out, _) = reduce(&[a, b]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn distinct_pairs_merge_independently() {
        let events = vec![
            ev(0, 0, Operation::Read, 1, 0),
            ev(1, 2, Operation::Read, 3, 5),
            ev(2, 0, Operation::Read, 1, 10),
            ev(3, 2, Operation::Read, 3, 15),
        ];
        let (out, _) = reduce(&events);
        // Each pair's run is uninterrupted on its own endpoints.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| e.merged == 2));
    }

    #[test]
    fn empty_input() {
        let (out, stats) = reduce(&[]);
        assert!(out.is_empty());
        assert_eq!(stats.factor(), 1.0);
        assert_eq!(stats.removed_ratio(), 0.0);
    }

    #[test]
    fn output_sorted_by_start() {
        let events = vec![
            ev(0, 0, Operation::Read, 1, 50),
            ev(1, 2, Operation::Write, 3, 10),
            ev(2, 4, Operation::Fork, 5, 30),
        ];
        let (out, _) = reduce(&events);
        for w in out.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    /// Strategy: small random event streams over few entities.
    fn arb_events() -> impl Strategy<Value = Vec<Event>> {
        prop::collection::vec(
            (
                0u32..4, // subject
                0u32..4, // object
                prop::sample::select(vec![
                    Operation::Read,
                    Operation::Write,
                    Operation::Fork,
                    Operation::Send,
                ]),
            ),
            0..40,
        )
        .prop_map(|specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (s, o, op))| {
                    let o = if s == o { (o + 1) % 4 } else { o };
                    ev(i as u32, s, op, o, i as u64 * 10)
                })
                .collect()
        })
    }

    proptest! {
        /// The defining invariant: for every merged event, no *other*
        /// output event touching either endpoint overlaps its window.
        #[test]
        fn no_foreign_activity_inside_merged_windows(events in arb_events()) {
            let (out, stats) = reduce(&events);
            prop_assert!(stats.after <= stats.before);
            // Total constituents and bytes are conserved.
            let merged_total: u32 = out.iter().map(|e| e.merged).sum();
            prop_assert_eq!(merged_total as usize, events.len());
            let bytes_in: u64 = events.iter().map(|e| e.bytes).sum();
            let bytes_out: u64 = out.iter().map(|e| e.bytes).sum();
            prop_assert_eq!(bytes_in, bytes_out);

            for m in out.iter().filter(|e| e.merged > 1) {
                for other in events.iter() {
                    // Skip constituents of m itself.
                    let same_key = other.subject == m.subject
                        && other.object == m.object
                        && other.op == m.op
                        && other.start >= m.start
                        && other.end <= m.end;
                    if same_key {
                        continue;
                    }
                    let shares_endpoint = other.subject == m.subject
                        || other.subject == m.object
                        || other.object == m.subject
                        || other.object == m.object;
                    if shares_endpoint {
                        let strictly_inside = other.start > m.start && other.end < m.end;
                        prop_assert!(
                            !strictly_inside,
                            "event {:?} interleaves merged window [{}, {}]",
                            other.id, m.start, m.end
                        );
                    }
                }
            }
        }

        /// CPR is idempotent: reducing a reduced stream changes nothing.
        #[test]
        fn reduction_is_idempotent(events in arb_events()) {
            let (once, _) = reduce(&events);
            let (twice, stats) = reduce(&once);
            prop_assert_eq!(stats.before, stats.after);
            prop_assert_eq!(once, twice);
        }
    }
}
