//! # ThreatRaptor
//!
//! A reproduction of **ThreatRaptor** (Gao et al., ICDE 2021): a system
//! that facilitates cyber threat hunting in computer systems using
//! open-source Cyber Threat Intelligence (OSCTI).
//!
//! The full pipeline (paper Fig. 1):
//!
//! ```text
//! OSCTI report ──► threat behavior extraction ──► threat behavior graph
//!                                                        │
//!                                                        ▼
//! system audit logs ──► parsing ──► storage ◄── TBQL query synthesis
//!                                     │                  │
//!                                     ▼                  ▼
//!                             query execution ◄── TBQL query
//!                                     │
//!                                     ▼
//!                         matched system auditing records
//! ```
//!
//! # Quickstart
//!
//! ```
//! use threatraptor::prelude::*;
//!
//! // 1. Obtain audit logs (here: the built-in host simulator).
//! let scenario = ScenarioBuilder::new()
//!     .seed(42)
//!     .attacks(&[AttackKind::DataLeakage])
//!     .target_events(3_000)
//!     .build();
//!
//! // 2. Build the hunting system over the parsed logs.
//! let raptor = ThreatRaptor::from_parsed(&scenario.log, true);
//!
//! // 3. Hunt directly from threat-intelligence text.
//! let outcome = raptor
//!     .hunt_report(threatraptor::FIG2_OSCTI_TEXT)
//!     .expect("the described behavior is present");
//! assert!(!outcome.result.is_empty());
//! println!("{}", outcome.tbql);
//! println!("{}", outcome.result.render_table());
//! ```

pub use threatraptor_audit as audit;
pub use threatraptor_engine as engine;
pub use threatraptor_nlp as nlp;
pub use threatraptor_obs as obs;
pub use threatraptor_service as service;
pub use threatraptor_storage as storage;
pub use threatraptor_synth as synth;
pub use threatraptor_tbql as tbql;

pub use threatraptor_audit::feed::{ChunkBy, LogFeed};
pub use threatraptor_audit::parser::{LogChunk, ParseError, ParsedLog};
pub use threatraptor_engine::{Engine, EngineError, ExecMode, HuntResult, ShardedEngine};
pub use threatraptor_nlp::pipeline::FIG2_OSCTI_TEXT;
pub use threatraptor_nlp::{ExtractionResult, ThreatBehaviorGraph, ThreatExtractor};
pub use threatraptor_obs::{JsonValue, MetricsSnapshot, Registry, TraceSink};
pub use threatraptor_service::{
    FollowDelta, FollowEvent, FollowHunt, FollowSubscription, HuntJob, HuntServer, HuntService,
    IngestConfig, IngestService, JobHandle, JobId, JobReport, ServerConfig, ServiceConfig,
};
pub use threatraptor_storage::{AuditStore, SealPolicy, ShardedStore, StreamingStore};
pub use threatraptor_synth::{synthesize, synthesize_with_plan, SynthesisError, SynthesisPlan};
pub use threatraptor_tbql::parser::FIG2_TBQL;

use std::fmt;

/// Common imports for ThreatRaptor applications.
pub mod prelude {
    pub use crate::{HuntOutcome, ThreatRaptor, ThreatRaptorError};
    pub use threatraptor_audit::feed::{ChunkBy, LogFeed};
    pub use threatraptor_audit::sim::scenario::{AttackKind, BenignMix, ScenarioBuilder};
    pub use threatraptor_engine::{Engine, ExecMode, HuntResult, ShardedEngine};
    pub use threatraptor_nlp::{ThreatBehaviorGraph, ThreatExtractor};
    pub use threatraptor_service::{
        FollowHunt, HuntJob, HuntServer, HuntService, IngestConfig, IngestService, ServerConfig,
        ServiceConfig,
    };
    pub use threatraptor_storage::{AuditStore, SealPolicy, ShardedStore, StreamingStore};
    pub use threatraptor_synth::{DefaultPlan, PathPatternPlan, TimeWindowPlan};
    pub use threatraptor_tbql::printer::print_query;
}

/// Errors from the end-to-end pipeline.
#[derive(Debug)]
pub enum ThreatRaptorError {
    /// Raw audit log parsing failed.
    Parse(ParseError),
    /// No TBQL query could be synthesized from the report.
    Synthesis(SynthesisError),
    /// Query execution failed.
    Engine(EngineError),
}

impl fmt::Display for ThreatRaptorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreatRaptorError::Parse(e) => write!(f, "log parsing: {e}"),
            ThreatRaptorError::Synthesis(e) => write!(f, "query synthesis: {e}"),
            ThreatRaptorError::Engine(e) => write!(f, "query execution: {e}"),
        }
    }
}

impl std::error::Error for ThreatRaptorError {}

impl From<ParseError> for ThreatRaptorError {
    fn from(e: ParseError) -> Self {
        ThreatRaptorError::Parse(e)
    }
}

impl From<SynthesisError> for ThreatRaptorError {
    fn from(e: SynthesisError) -> Self {
        ThreatRaptorError::Synthesis(e)
    }
}

impl From<EngineError> for ThreatRaptorError {
    fn from(e: EngineError) -> Self {
        ThreatRaptorError::Engine(e)
    }
}

/// Result of an end-to-end hunt from an OSCTI report.
#[derive(Debug)]
pub struct HuntOutcome {
    /// The extraction result (threat behavior graph, IOC table, timings).
    pub extraction: ExtractionResult,
    /// The synthesized TBQL query (AST).
    pub query: tbql::ast::Query,
    /// The synthesized TBQL query (canonical text).
    pub tbql: String,
    /// The matched system auditing records.
    pub result: HuntResult,
}

/// The ThreatRaptor system: an audit store plus the OSCTI-to-query
/// pipeline.
#[derive(Debug, Clone)]
pub struct ThreatRaptor {
    store: AuditStore,
}

impl ThreatRaptor {
    /// Builds the system from raw Sysdig-like audit log text.
    ///
    /// `cpr` enables Causality-Preserved Reduction during ingestion
    /// (paper §II-B).
    pub fn from_raw_log(raw: &str, cpr: bool) -> Result<ThreatRaptor, ThreatRaptorError> {
        let log = audit::parser::Parser::new().parse_document(raw)?;
        Ok(Self::from_parsed(&log, cpr))
    }

    /// Builds the system from an already parsed log.
    pub fn from_parsed(log: &ParsedLog, cpr: bool) -> ThreatRaptor {
        ThreatRaptor {
            store: AuditStore::ingest(log, cpr),
        }
    }

    /// The underlying audit store.
    pub fn store(&self) -> &AuditStore {
        &self.store
    }

    /// Extracts a threat behavior graph from OSCTI text (Algorithm 1).
    pub fn extract(&self, oscti: &str) -> ExtractionResult {
        ThreatExtractor::new().extract(oscti)
    }

    /// Executes a TBQL query (scheduled strategy).
    pub fn hunt(&self, tbql_src: &str) -> Result<HuntResult, ThreatRaptorError> {
        Ok(Engine::new(&self.store).hunt(tbql_src)?)
    }

    /// Executes a TBQL query with an explicit strategy.
    pub fn hunt_mode(
        &self,
        tbql_src: &str,
        mode: ExecMode,
    ) -> Result<HuntResult, ThreatRaptorError> {
        Ok(Engine::new(&self.store).hunt_mode(tbql_src, mode)?)
    }

    /// End-to-end hunt: OSCTI text → behavior graph → synthesized TBQL →
    /// matched auditing records (the complete Fig. 2 pipeline).
    pub fn hunt_report(&self, oscti: &str) -> Result<HuntOutcome, ThreatRaptorError> {
        self.hunt_report_with_plan(oscti, &synth::DefaultPlan)
    }

    /// Opens the multi-hunt service layer over this system's (already
    /// reduced) store: the log is re-partitioned into `config.shards`
    /// time-window shards, and the returned [`HuntService`] runs batches
    /// of concurrent hunts on a worker pool with a shared compiled-plan
    /// cache.
    ///
    /// ```
    /// use threatraptor::prelude::*;
    ///
    /// let scenario = ScenarioBuilder::new().seed(42).target_events(3_000).build();
    /// let raptor = ThreatRaptor::from_parsed(&scenario.log, true);
    /// let service = raptor.service(ServiceConfig::with_shards(4));
    /// let reports = service.run(vec![
    ///     HuntJob::report(threatraptor::FIG2_OSCTI_TEXT),
    ///     HuntJob::tbql(threatraptor::FIG2_TBQL),
    /// ]);
    /// assert!(reports.iter().all(|r| !r.outcome.as_ref().unwrap().is_empty()));
    /// ```
    pub fn service(&self, config: ServiceConfig) -> HuntService {
        HuntService::from_store(&self.store, config)
    }

    /// End-to-end hunt with a custom synthesis plan.
    pub fn hunt_report_with_plan(
        &self,
        oscti: &str,
        plan: &dyn SynthesisPlan,
    ) -> Result<HuntOutcome, ThreatRaptorError> {
        let extraction = self.extract(oscti);
        let query = synthesize_with_plan(&extraction.graph, plan)?;
        let tbql_text = tbql::printer::print_query(&query);
        let result = Engine::new(&self.store).hunt_query(&query, ExecMode::Scheduled)?;
        Ok(HuntOutcome {
            extraction,
            query,
            tbql: tbql_text,
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn raptor() -> (ThreatRaptor, audit::sim::scenario::Scenario) {
        let sc = ScenarioBuilder::new()
            .seed(42)
            .attacks(&[AttackKind::DataLeakage, AttackKind::PasswordCrack])
            .target_events(5_000)
            .build();
        (ThreatRaptor::from_parsed(&sc.log, true), sc)
    }

    #[test]
    fn end_to_end_fig2() {
        let (raptor, sc) = raptor();
        let outcome = raptor.hunt_report(FIG2_OSCTI_TEXT).expect("hunt succeeds");
        assert_eq!(outcome.extraction.graph.node_count(), 9);
        assert!(outcome.tbql.contains("%/bin/tar%"));
        let (p, r) = outcome
            .result
            .precision_recall(raptor.store(), &sc.ground_truth("data_leakage"));
        assert_eq!((p, r), (1.0, 1.0));
    }

    #[test]
    fn from_raw_log_round_trip() {
        let sc = ScenarioBuilder::new().seed(7).target_events(1_000).build();
        let raptor = ThreatRaptor::from_raw_log(&sc.raw, false).unwrap();
        assert_eq!(raptor.store().event_count(), sc.log.events.len());
        let bad = ThreatRaptor::from_raw_log("not\ta\tlog", false);
        assert!(matches!(bad, Err(ThreatRaptorError::Parse(_))));
    }

    #[test]
    fn direct_tbql_hunting() {
        let (raptor, _) = raptor();
        let result = raptor.hunt(FIG2_TBQL).unwrap();
        assert!(!result.is_empty());
        let err = raptor.hunt("syntactically broken").unwrap_err();
        assert!(matches!(err, ThreatRaptorError::Engine(_)));
    }

    #[test]
    fn service_facade_matches_direct_hunting() {
        let (raptor, sc) = raptor();
        let service = raptor.service(ServiceConfig::with_shards(4).workers(2));
        let direct = raptor.hunt(FIG2_TBQL).unwrap();
        let served = service.hunt_tbql(FIG2_TBQL).unwrap();
        assert_eq!(served.rows, direct.rows);
        let (p, r) = served.precision_recall(service.store(), &sc.ground_truth("data_leakage"));
        assert_eq!((p, r), (1.0, 1.0));
    }

    #[test]
    fn synthesis_failure_surfaces() {
        let (raptor, _) = raptor();
        let err = raptor
            .hunt_report("Nothing interesting happened today.")
            .unwrap_err();
        assert!(matches!(err, ThreatRaptorError::Synthesis(_)));
        assert!(err.to_string().contains("synthesis"));
    }
}
