//! ThreatRaptor telemetry layer.
//!
//! The paper's headline claim is hunting *efficiency*; this crate
//! makes that measurable. It provides, with no dependencies beyond
//! `std` and the workspace's `threatraptor-sync` facade:
//!
//! - **Metric primitives** ([`Counter`], [`Gauge`], [`Histogram`]) —
//!   lock-free atomic cells; histograms use 64 log2 buckets with
//!   nearest-rank p50/p90/p99 extraction and an exact max.
//! - **A registry** ([`Registry`], [`Scope`]) — get-or-create
//!   registration keyed by name + sorted labels, deterministic
//!   snapshot order, a process-global instance plus per-instance
//!   registries for tenant isolation.
//! - **Span tracing** ([`TraceSink`], [`Span`]) — RAII per-stage wall
//!   clock timers for the hunt lifecycle (parse → compile → propagate
//!   → scan → join → project → synthesize) and the serving lifecycle
//!   (queue wait, execution, ingest, dispatch, follow push).
//! - **Trace trees** ([`TraceTree`], [`SpanNode`]) — hierarchical
//!   per-execution profiles (parent/child spans, per-span attributes)
//!   exportable as Chrome `trace_event` JSON for `about:tracing` and
//!   Perfetto.
//! - **Exposition** ([`MetricsSnapshot`]) — render as Prometheus-style
//!   text or JSON; [`JsonValue`] is a minimal parser/printer the bench
//!   trajectory records build on.
//!
//! Nothing here touches the network or the registry, matching the
//! repo's offline-shim constraint; sync primitives come through the
//! facade so the interleaving checker (`crates/check`) can instrument
//! them.

pub mod json;
pub mod metrics;
pub mod registry;
pub mod snapshot;
pub mod trace;
pub mod tree;

pub use json::{JsonError, JsonValue};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, HISTOGRAM_BUCKETS};
pub use registry::{MetricKey, Registry, Scope};
pub use snapshot::{MetricsSnapshot, Sample, SampleValue};
pub use trace::{Span, TraceSink};
pub use tree::{AttrValue, SpanNode, TraceId, TraceTree, ROOT_SPAN};
