//! Metric registry: named, optionally labeled metrics with
//! get-or-create registration and deterministic snapshot order.
//!
//! Registration takes a short `RwLock` write; the returned handles are
//! `Arc`s, so hot paths hold their handle and never touch the registry
//! again. A process-wide [`Registry::global()`] exists for ad-hoc use,
//! but the service layer threads per-instance registries (one per
//! `IngestService`/`HuntServer`) so that multi-tenant deployments can
//! keep tenants apart; [`Scope`] prefixes names for the same reason.

use std::collections::BTreeMap;
use threatraptor_sync::{Arc, OnceLock, RwLock};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{MetricsSnapshot, Sample, SampleValue};

/// Identity of a metric: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, e.g. `hunt_stage_ns`.
    pub name: String,
    /// Label pairs, e.g. `[("stage", "parse")]`. Kept sorted so the
    /// same logical metric always maps to the same key.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A collection of named metrics.
///
/// `BTreeMap` keeps snapshot iteration (and therefore rendered
/// output) in deterministic name/label order, which the golden tests
/// and the bench record diff rely on.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<MetricKey, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn read_existing(&self, key: &MetricKey) -> Option<Metric> {
        let map = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        map.get(key).cloned()
    }

    fn get_or_insert(&self, key: MetricKey, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self.read_existing(&key) {
            return m;
        }
        let mut map = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        map.entry(key).or_insert_with(make).clone()
    }

    /// Gets or creates an unlabeled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_labeled(name, &[])
    }

    /// Gets or creates a labeled counter.
    ///
    /// Panics if the key is already registered as a different type —
    /// that is a programming error, not a runtime condition.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        match self.get_or_insert(key, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Gets or creates an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_labeled(name, &[])
    }

    /// Gets or creates a labeled gauge.
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        match self.get_or_insert(key, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Gets or creates an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_labeled(name, &[])
    }

    /// Gets or creates a labeled histogram.
    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        match self.get_or_insert(key, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// A view of this registry that prefixes every metric name —
    /// per-tenant or per-component namespacing without separate
    /// registry instances.
    pub fn scoped(self: &Arc<Registry>, prefix: &str) -> Scope {
        Scope {
            registry: Arc::clone(self),
            prefix: prefix.to_string(),
        }
    }

    /// Point-in-time snapshot of every registered metric, in
    /// deterministic key order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        let samples = map
            .iter()
            .map(|(key, metric)| Sample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(Box::new(h.summary())),
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A name-prefixing view over a shared [`Registry`].
#[derive(Debug, Clone)]
pub struct Scope {
    registry: Arc<Registry>,
    prefix: String,
}

impl Scope {
    fn full(&self, name: &str) -> String {
        format!("{}_{}", self.prefix, name)
    }

    /// Gets or creates a counter under this scope's prefix.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(&self.full(name))
    }

    /// Gets or creates a gauge under this scope's prefix.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(&self.full(name))
    }

    /// Gets or creates a histogram under this scope's prefix.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(&self.full(name))
    }

    /// Gets or creates a labeled histogram under this scope's prefix.
    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.registry.histogram_labeled(&self.full(name), labels)
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn get_or_create_returns_same_cell() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn labels_distinguish_metrics() {
        let r = Registry::new();
        let parse = r.histogram_labeled("stage_ns", &[("stage", "parse")]);
        let join = r.histogram_labeled("stage_ns", &[("stage", "join")]);
        parse.record(1);
        join.record(2);
        join.record(3);
        assert_eq!(parse.count(), 1);
        assert_eq!(join.count(), 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn label_order_is_normalized() {
        let r = Registry::new();
        let a = r.counter_labeled("m", &[("b", "2"), ("a", "1")]);
        let b = r.counter_labeled("m", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("m");
        let _ = r.gauge("m");
    }

    #[test]
    fn scope_prefixes_names() {
        let r = Arc::new(Registry::new());
        let s = r.scoped("tenant0");
        s.counter("jobs").add(3);
        assert_eq!(r.counter("tenant0_jobs").get(), 3);
    }

    #[test]
    fn snapshot_is_sorted_by_key() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        r.gauge("mid").set(5);
        let names: Vec<String> = r
            .snapshot()
            .samples
            .iter()
            .map(|s| s.name.clone())
            .collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn concurrent_registration_converges() {
        let r = Arc::new(Registry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                thread::spawn(move || {
                    for i in 0..100 {
                        r.counter(&format!("c{}", i % 10)).inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.len(), 10);
        let total: u64 = r
            .snapshot()
            .samples
            .iter()
            .map(|s| match s.value {
                SampleValue::Counter(v) => v,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 800);
    }
}
