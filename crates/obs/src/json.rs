//! Minimal JSON value model with a recursive-descent parser and a
//! pretty printer.
//!
//! The offline build has no serde; this covers exactly what the
//! telemetry layer needs — rendering [`MetricsSnapshot`]s, persisting
//! bench records, and re-reading them for schema validation and
//! trajectory diffs. Objects preserve insertion order (`Vec` of
//! pairs), which keeps rendered artifacts stable.
//!
//! [`MetricsSnapshot`]: crate::snapshot::MetricsSnapshot

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

/// Parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => out.push_str(&format_number(*n)),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Integral values render without a decimal point so counters stay
/// readable; anything else falls back to Rust's shortest float form.
fn format_number(n: f64) -> String {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else if n.is_finite() {
        format!("{n}")
    } else {
        // JSON has no Infinity/NaN; degrade to null.
        "null".to_string()
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates degrade to the replacement
                            // character; the telemetry layer never
                            // emits them.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Num(42.0));
        assert_eq!(JsonValue::parse("-3.5e2").unwrap(), JsonValue::Num(-350.0));
        assert_eq!(
            JsonValue::parse("\"hi\\nthere\"").unwrap(),
            JsonValue::Str("hi\nthere".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(JsonValue::as_str), Some("c"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn round_trip_compact_and_pretty() {
        let v = JsonValue::Obj(vec![
            ("n".into(), JsonValue::Num(7.0)),
            ("s".into(), JsonValue::Str("x\"y".into())),
            ("a".into(), JsonValue::Arr(vec![JsonValue::Bool(true)])),
        ]);
        for text in [v.compact(), v.pretty()] {
            assert_eq!(JsonValue::parse(&text).unwrap(), v);
        }
        assert_eq!(v.compact(), r#"{"n":7,"s":"x\"y","a":[true]}"#);
    }

    #[test]
    fn integral_numbers_render_without_decimal() {
        assert_eq!(JsonValue::Num(5.0).compact(), "5");
        assert_eq!(JsonValue::Num(-2.0).compact(), "-2");
        assert_eq!(JsonValue::Num(2.5).compact(), "2.5");
    }

    #[test]
    fn unicode_survives_round_trip() {
        let v = JsonValue::Str("héllo→world".into());
        assert_eq!(JsonValue::parse(&v.compact()).unwrap(), v);
        assert_eq!(
            JsonValue::parse("\"\\u00e9\"").unwrap(),
            JsonValue::Str("é".into())
        );
    }
}
