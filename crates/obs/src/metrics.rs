//! Lock-free metric primitives: counters, gauges, and log2-bucketed
//! latency histograms with percentile extraction.
//!
//! All three types are cheap `Arc`-shared cells updated with relaxed
//! atomics — a recorded sample is a handful of `fetch_add`s, never a
//! lock. Snapshots read the same atomics, so a snapshot taken while
//! writers are active is a consistent-enough point-in-time view (each
//! individual cell is exact; cross-cell skew is bounded by in-flight
//! updates).

use threatraptor_sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of log2 buckets in a [`Histogram`].
///
/// Bucket `i` covers values whose highest set bit is `i`, i.e. the
/// half-open range `[2^i, 2^(i+1))` (bucket 0 holds 0 and 1). With
/// 64 buckets the histogram covers the full `u64` range, which is
/// plenty for nanosecond latencies (bucket 34 is ~17 s).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
///
// ordering: every metric in this module uses Relaxed. Each is an
// independent scalar with no cross-variable invariant: scrapers
// tolerate a stale or torn-across-metrics view, and nothing
// synchronizes-with a metric write. (A snapshot taken mid-update may
// show count bumped before sum — the documented contract.)
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depths, live
/// subscription counts, open-window sizes).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2 histogram for latency-style values.
///
/// Recording is lock-free: one `fetch_add` into the value's log2
/// bucket plus count/sum accumulators and a `fetch_max` for the exact
/// maximum. Percentiles are extracted nearest-rank over the cumulative
/// bucket counts; a reported quantile is the upper bound of the bucket
/// containing that rank, clamped to the observed maximum, so
/// `p50 <= p90 <= p99 <= max` always holds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Log2 bucket index for a value: the position of its highest set bit
/// (0 and 1 both land in bucket 0).
fn bucket_index(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`: `2^(i+1) - 1`.
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Point-in-time summary with percentiles.
    pub fn summary(&self) -> HistogramSummary {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        // Derive the total from the bucket array itself so the
        // percentile ranks are consistent with the cumulative walk
        // even while writers race with this snapshot.
        let count: u64 = buckets.iter().sum();
        let max = self.max();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Nearest-rank: the smallest bucket whose cumulative
            // count reaches ceil(q * count).
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper(i).min(max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum: self.sum(),
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
            buckets,
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// 50th percentile (bucket upper bound, clamped to `max`).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Raw per-bucket counts (log2 buckets).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSummary {
    fn default() -> HistogramSummary {
        HistogramSummary {
            count: 0,
            sum: 0,
            max: 0,
            p50: 0,
            p90: 0,
            p99: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSummary {
    /// Mean of the recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
        g.add(10);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(1), 3);
        assert_eq!(bucket_upper(9), 1023);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn histogram_summary_exact_fields() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn percentiles_monotonic_and_clamped() {
        let h = Histogram::new();
        // Skewed distribution: many small, few large.
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..9 {
            h.record(1_000);
        }
        h.record(1_000_000);
        let s = h.summary();
        assert!(s.p50 <= s.p90, "p50={} p90={}", s.p50, s.p90);
        assert!(s.p90 <= s.p99, "p90={} p99={}", s.p90, s.p99);
        assert!(s.p99 <= s.max, "p99={} max={}", s.p99, s.max);
        // p50 falls in bucket of value 10 → upper bound 15.
        assert_eq!(s.p50, 15);
        // max is exact.
        assert_eq!(s.max, 1_000_000);
    }

    #[test]
    fn single_sample_percentiles_equal_max() {
        let h = Histogram::new();
        h.record(777);
        let s = h.summary();
        assert_eq!(s.p50, 777);
        assert_eq!(s.p90, 777);
        assert_eq!(s.p99, 777);
        assert_eq!(s.max, 777);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, 0);
        assert_eq!(s.p99, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn concurrent_counter_hammering_exact() {
        let c = Arc::new(Counter::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), threads as u64 * per_thread);
    }

    #[test]
    fn concurrent_histogram_hammering_exact_counts() {
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    for i in 0..per_thread {
                        // Deterministic spread across several buckets.
                        h.record((i % 10) * 100 + t as u64);
                    }
                })
            })
            .collect();
        for th in handles {
            th.join().unwrap();
        }
        let s = h.summary();
        assert_eq!(s.count, threads as u64 * per_thread);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        // Max value generated: 9*100 + 7 = 907.
        assert_eq!(s.max, 907);
    }
}
