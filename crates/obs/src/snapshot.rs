//! Snapshot exposition: a point-in-time metrics view renderable as
//! Prometheus-style text or JSON.

use crate::json::JsonValue;
use crate::metrics::HistogramSummary;

/// The value of one sampled metric.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary with percentiles (boxed: the summary carries
    /// the full bucket array and dwarfs the scalar variants).
    Histogram(Box<HistogramSummary>),
}

/// One sampled metric: name, labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Sampled value.
    pub value: SampleValue,
}

/// A point-in-time view of a whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Samples in deterministic (name, labels) order.
    pub samples: Vec<Sample>,
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double-quote, and newline become `\\`, `\"`, and `\n`.
///
/// Label values here can carry arbitrary user text (follow-hunt
/// pattern labels come straight from TBQL sources), so escaping is
/// what keeps the exposition parseable and round-trippable.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders `labels`, optionally with an extra pair appended, as a
/// `{k="v",...}` block (empty string when there are no labels).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

impl MetricsSnapshot {
    /// Finds a sample by name and exact label set.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        self.samples
            .iter()
            .find(|s| s.name == name && matches_labels(&s.labels, labels))
    }

    /// Counter value by name (unlabeled), or `None` when absent or a
    /// different type.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match &self.get(name, &[])?.value {
            SampleValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name (unlabeled).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match &self.get(name, &[])?.value {
            SampleValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram summary by name and labels.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSummary> {
        match &self.get(name, labels)?.value {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Prometheus-style text exposition.
    ///
    /// Counters and gauges are single lines; histograms render as a
    /// summary-style family — `{quantile="..."}` lines plus `_count`,
    /// `_sum`, and `_max` — which keeps the output compact while
    /// preserving the percentiles the registry already extracts.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        // One `# TYPE` line per family: labeled series of the same name
        // are adjacent (snapshot order is name-major), so tracking the
        // previous name suffices.
        let mut last_name: Option<&str> = None;
        for s in &self.samples {
            let first_of_family = last_name != Some(s.name.as_str());
            last_name = Some(s.name.as_str());
            match &s.value {
                SampleValue::Counter(v) => {
                    if first_of_family {
                        out.push_str(&format!("# TYPE {} counter\n", s.name));
                    }
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.name,
                        label_block(&s.labels, None),
                        v
                    ));
                }
                SampleValue::Gauge(v) => {
                    if first_of_family {
                        out.push_str(&format!("# TYPE {} gauge\n", s.name));
                    }
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.name,
                        label_block(&s.labels, None),
                        v
                    ));
                }
                SampleValue::Histogram(h) => {
                    if first_of_family {
                        out.push_str(&format!("# TYPE {} summary\n", s.name));
                    }
                    for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            s.name,
                            label_block(&s.labels, Some(("quantile", q))),
                            v
                        ));
                    }
                    let block = label_block(&s.labels, None);
                    out.push_str(&format!("{}_count{} {}\n", s.name, block, h.count));
                    out.push_str(&format!("{}_sum{} {}\n", s.name, block, h.sum));
                    out.push_str(&format!("{}_max{} {}\n", s.name, block, h.max));
                }
            }
        }
        out
    }

    /// Structured [`JsonValue`] form (the bench runner persists this).
    pub fn to_json_value(&self) -> JsonValue {
        let samples = self
            .samples
            .iter()
            .map(|s| {
                let labels = JsonValue::Obj(
                    s.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
                        .collect(),
                );
                let mut fields = vec![
                    ("name".to_string(), JsonValue::Str(s.name.clone())),
                    ("labels".to_string(), labels),
                ];
                match &s.value {
                    SampleValue::Counter(v) => {
                        fields.push(("type".into(), JsonValue::Str("counter".into())));
                        fields.push(("value".into(), JsonValue::Num(*v as f64)));
                    }
                    SampleValue::Gauge(v) => {
                        fields.push(("type".into(), JsonValue::Str("gauge".into())));
                        fields.push(("value".into(), JsonValue::Num(*v as f64)));
                    }
                    SampleValue::Histogram(h) => {
                        fields.push(("type".into(), JsonValue::Str("histogram".into())));
                        fields.push((
                            "value".into(),
                            JsonValue::Obj(vec![
                                ("count".into(), JsonValue::Num(h.count as f64)),
                                ("sum".into(), JsonValue::Num(h.sum as f64)),
                                ("max".into(), JsonValue::Num(h.max as f64)),
                                ("p50".into(), JsonValue::Num(h.p50 as f64)),
                                ("p90".into(), JsonValue::Num(h.p90 as f64)),
                                ("p99".into(), JsonValue::Num(h.p99 as f64)),
                            ]),
                        ));
                    }
                }
                JsonValue::Obj(fields)
            })
            .collect();
        JsonValue::Obj(vec![("samples".to_string(), JsonValue::Arr(samples))])
    }

    /// JSON text exposition (pretty-printed).
    pub fn to_json(&self) -> String {
        self.to_json_value().pretty()
    }
}

fn matches_labels(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    if have.len() != want.len() {
        return false;
    }
    let mut want: Vec<(&str, &str)> = want.to_vec();
    want.sort();
    have.iter()
        .zip(want.iter())
        .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("jobs_total").add(5);
        r.gauge("queue_depth").set(2);
        let h = r.histogram_labeled("stage_ns", &[("stage", "parse")]);
        for v in [100u64, 200, 300, 4000] {
            h.record(v);
        }
        r
    }

    #[test]
    fn prometheus_golden() {
        let snap = sample_registry().snapshot();
        let text = snap.to_prometheus();
        let expected = "\
# TYPE jobs_total counter
jobs_total 5
# TYPE queue_depth gauge
queue_depth 2
# TYPE stage_ns summary
stage_ns{stage=\"parse\",quantile=\"0.5\"} 255
stage_ns{stage=\"parse\",quantile=\"0.9\"} 4000
stage_ns{stage=\"parse\",quantile=\"0.99\"} 4000
stage_ns_count{stage=\"parse\"} 4
stage_ns_sum{stage=\"parse\"} 4600
stage_ns_max{stage=\"parse\"} 4000
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_emits_one_type_line_per_family() {
        let r = Registry::new();
        r.counter_labeled("stage_total", &[("stage", "parse")])
            .inc();
        r.counter_labeled("stage_total", &[("stage", "join")]).inc();
        let text = r.snapshot().to_prometheus();
        assert_eq!(
            text.matches("# TYPE stage_total counter").count(),
            1,
            "labeled series of one family share a single TYPE line:\n{text}"
        );
        assert!(text.contains("stage_total{stage=\"join\"} 1"));
        assert!(text.contains("stage_total{stage=\"parse\"} 1"));
    }

    /// Inverse of `escape_label_value`, implementing the Prometheus
    /// text-format unescaping rules for the round-trip check.
    fn unescape_label_value(v: &str) -> String {
        let mut out = String::new();
        let mut chars = v.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        }
        out
    }

    #[test]
    fn prometheus_escapes_label_values_golden() {
        let r = Registry::new();
        let hostile = "say \"hi\"\\now\nplease";
        r.counter_labeled("follow_pattern_rows_total", &[("pattern", hostile)])
            .add(7);
        let text = r.snapshot().to_prometheus();
        let expected = "\
# TYPE follow_pattern_rows_total counter
follow_pattern_rows_total{pattern=\"say \\\"hi\\\"\\\\now\\nplease\"} 7
";
        assert_eq!(text, expected);
        // The exposition must stay one-sample-per-line: a raw newline
        // in a label value would split the sample across lines.
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn escaped_label_values_round_trip() {
        for original in [
            "plain",
            "with \"quotes\"",
            "back\\slash",
            "multi\nline",
            "all \"of\\them\"\nat once",
            "trailing backslash\\",
        ] {
            let escaped = escape_label_value(original);
            assert!(!escaped.contains('\n'), "escaped form has raw newline");
            assert_eq!(
                unescape_label_value(&escaped),
                original,
                "escape/unescape must round-trip {original:?}"
            );
        }
    }

    #[test]
    fn json_golden() {
        let r = Registry::new();
        r.counter("hits").add(3);
        r.gauge("depth").set(-1);
        let snap = r.snapshot();
        let expected = "\
{
  \"samples\": [
    {
      \"name\": \"depth\",
      \"labels\": {},
      \"type\": \"gauge\",
      \"value\": -1
    },
    {
      \"name\": \"hits\",
      \"labels\": {},
      \"type\": \"counter\",
      \"value\": 3
    }
  ]
}";
        assert_eq!(snap.to_json(), expected);
    }

    #[test]
    fn json_round_trips_through_parser() {
        let snap = sample_registry().snapshot();
        let text = snap.to_json();
        let parsed = crate::json::JsonValue::parse(&text).expect("valid JSON");
        let samples = parsed.get("samples").and_then(JsonValue::as_array).unwrap();
        assert_eq!(samples.len(), 3);
        let hist = &samples[2];
        assert_eq!(
            hist.get("type").and_then(JsonValue::as_str),
            Some("histogram")
        );
        let count = hist
            .get("value")
            .and_then(|v| v.get("count"))
            .and_then(JsonValue::as_f64)
            .unwrap();
        assert_eq!(count, 4.0);
    }

    #[test]
    fn accessors_find_samples() {
        let snap = sample_registry().snapshot();
        assert_eq!(snap.counter("jobs_total"), Some(5));
        assert_eq!(snap.gauge("queue_depth"), Some(2));
        let h = snap.histogram("stage_ns", &[("stage", "parse")]).unwrap();
        assert_eq!(h.count, 4);
        assert!(snap.counter("missing").is_none());
        assert!(snap.histogram("stage_ns", &[("stage", "join")]).is_none());
    }
}
