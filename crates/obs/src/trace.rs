//! Hunt-stage span tracing.
//!
//! A [`TraceSink`] names one histogram family (e.g. `hunt_stage_ns`);
//! each [`Span`] it opens records wall time into the
//! `{stage="<name>"}` series when dropped, and bumps a parallel
//! `<family>_total{stage=...}` counter. Spans are RAII so
//! instrumented code can't forget to close them, and `record()`
//! exists for stages whose duration is measured elsewhere (e.g. a
//! queue wait computed from a submit timestamp).

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::{Counter, Histogram};
use crate::registry::Registry;

/// A named family of per-stage timers over a shared registry.
#[derive(Debug, Clone)]
pub struct TraceSink {
    registry: Arc<Registry>,
    family: String,
}

impl TraceSink {
    /// Creates a sink recording into `<family>{stage=...}` histograms
    /// (nanoseconds) and `<family>_total{stage=...}` counters.
    pub fn new(registry: Arc<Registry>, family: &str) -> TraceSink {
        TraceSink {
            registry,
            family: family.to_string(),
        }
    }

    fn series(&self, stage: &str) -> (Arc<Histogram>, Arc<Counter>) {
        let hist = self
            .registry
            .histogram_labeled(&self.family, &[("stage", stage)]);
        let count = self
            .registry
            .counter_labeled(&format!("{}_total", self.family), &[("stage", stage)]);
        (hist, count)
    }

    /// Opens an RAII span for `stage`; elapsed time is recorded on
    /// drop.
    pub fn span(&self, stage: &str) -> Span {
        let (hist, count) = self.series(stage);
        Span {
            hist,
            count,
            start: Instant::now(),
            cancelled: false,
        }
    }

    /// Records an externally measured duration for `stage`.
    pub fn record(&self, stage: &str, elapsed: Duration) {
        let (hist, count) = self.series(stage);
        hist.record_duration(elapsed);
        count.inc();
    }

    /// The backing registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

/// An in-flight stage timer; records on drop.
#[derive(Debug)]
pub struct Span {
    hist: Arc<Histogram>,
    count: Arc<Counter>,
    start: Instant,
    cancelled: bool,
}

impl Span {
    /// Time elapsed so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Discards the span without recording anything.
    ///
    /// For outcome-aware instrumentation: a stage that fails (parse
    /// error, panic) cancels its span so the failure does not pollute
    /// the success-latency series, and the caller records the elapsed
    /// time elsewhere (e.g. an error-labeled histogram).
    pub fn cancel(mut self) {
        self.cancelled = true;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.cancelled {
            return;
        }
        self.hist.record_duration(self.start.elapsed());
        self.count.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let registry = Arc::new(Registry::new());
        let sink = TraceSink::new(Arc::clone(&registry), "stage_ns");
        {
            let _span = sink.span("parse");
        }
        {
            let _span = sink.span("parse");
        }
        let snap = registry.snapshot();
        let h = snap.histogram("stage_ns", &[("stage", "parse")]).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(
            snap.get("stage_ns_total", &[("stage", "parse")])
                .map(|s| s.value.clone()),
            Some(crate::snapshot::SampleValue::Counter(2))
        );
    }

    #[test]
    fn record_takes_external_durations() {
        let registry = Arc::new(Registry::new());
        let sink = TraceSink::new(Arc::clone(&registry), "job_ns");
        sink.record("queue_wait", Duration::from_micros(5));
        let snap = registry.snapshot();
        let h = snap
            .histogram("job_ns", &[("stage", "queue_wait")])
            .unwrap();
        assert_eq!(h.count, 1);
        assert!(h.max >= 5_000, "expected >= 5us in ns, got {}", h.max);
    }

    #[test]
    fn cancelled_span_records_nothing() {
        let registry = Arc::new(Registry::new());
        let sink = TraceSink::new(Arc::clone(&registry), "stage_ns");
        drop(sink.span("parse"));
        sink.span("parse").cancel();
        let snap = registry.snapshot();
        let h = snap.histogram("stage_ns", &[("stage", "parse")]).unwrap();
        assert_eq!(h.count, 1, "cancelled span must not count");
        assert_eq!(
            snap.get("stage_ns_total", &[("stage", "parse")])
                .map(|s| s.value.clone()),
            Some(crate::snapshot::SampleValue::Counter(1))
        );
    }

    #[test]
    fn stages_are_separate_series() {
        let registry = Arc::new(Registry::new());
        let sink = TraceSink::new(Arc::clone(&registry), "s");
        drop(sink.span("a"));
        drop(sink.span("b"));
        drop(sink.span("b"));
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("s", &[("stage", "a")]).unwrap().count, 1);
        assert_eq!(snap.histogram("s", &[("stage", "b")]).unwrap().count, 2);
    }
}
