//! Hierarchical per-hunt trace trees.
//!
//! The flat [`TraceSink`](crate::TraceSink) aggregates stage timings
//! across *all* hunts; a [`TraceTree`] profiles *one* execution: a
//! root span with parented child spans ([`SpanNode`]) and per-span
//! attributes (rows scanned, cache hit/miss, match counts). Trees are
//! cheap owned values — the service layer builds one per job, stores
//! the slowest in its slow-hunt log, and exports them as Chrome
//! `trace_event` JSON loadable in `about:tracing` or Perfetto.

use std::fmt;
use std::time::{Duration, Instant};
use threatraptor_sync::atomic::{AtomicU64, Ordering};

use crate::json::JsonValue;

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Process-unique identifier of one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Allocates the next process-unique id.
    pub fn next() -> TraceId {
        // ordering: Relaxed — only uniqueness matters (fetch_add is
        // atomic at any ordering); ids carry no happens-before edge.
        TraceId(NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace#{}", self.0)
    }
}

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Textual attribute (e.g. a pattern id).
    Str(String),
    /// Integral attribute (e.g. rows scanned).
    Int(i64),
    /// Boolean attribute (e.g. cache hit/miss).
    Bool(bool),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> AttrValue {
        AttrValue::Int(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> AttrValue {
        AttrValue::Int(v as i64)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}

/// One span in a trace tree. Times are offsets from the trace origin.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name (e.g. `exec`, `scan:evt1`).
    pub name: String,
    /// Index of the parent span; `None` only for the root.
    pub parent: Option<usize>,
    /// Start offset from the trace origin.
    pub start: Duration,
    /// End offset from the trace origin; `None` while still open.
    pub end: Option<Duration>,
    /// Attribute pairs in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanNode {
    /// Span duration (zero while still open).
    pub fn duration(&self) -> Duration {
        self.end.unwrap_or(self.start).saturating_sub(self.start)
    }
}

/// A single execution's span tree.
///
/// Span indices returned by [`begin`](TraceTree::begin) and
/// [`add_span`](TraceTree::add_span) are stable handles into the
/// tree; index 0 is always the root.
#[derive(Debug, Clone)]
pub struct TraceTree {
    id: TraceId,
    origin: Instant,
    nodes: Vec<SpanNode>,
}

/// Index of the root span of every tree.
pub const ROOT_SPAN: usize = 0;

impl TraceTree {
    /// Creates a tree with a fresh id; the root span starts now.
    pub fn new(name: &str) -> TraceTree {
        TraceTree::started_at(TraceId::next(), name, Instant::now())
    }

    /// Creates a tree under an explicit id (e.g. derived from a job
    /// id allocated elsewhere); the root span starts now.
    pub fn with_id(id: TraceId, name: &str) -> TraceTree {
        TraceTree::started_at(id, name, Instant::now())
    }

    /// Creates a tree whose root span started at `origin` — for
    /// traces whose first stage (e.g. a queue wait) began before the
    /// tree could be constructed.
    pub fn started_at(id: TraceId, name: &str, origin: Instant) -> TraceTree {
        TraceTree {
            id,
            origin,
            nodes: vec![SpanNode {
                name: name.to_string(),
                parent: None,
                start: Duration::ZERO,
                end: None,
                attrs: Vec::new(),
            }],
        }
    }

    /// The trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// All spans, root first, in creation order.
    pub fn nodes(&self) -> &[SpanNode] {
        &self.nodes
    }

    /// Current offset from the trace origin.
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }

    /// Opens a child span under `parent`, starting now.
    ///
    /// Panics if `parent` is out of range (a programming error).
    pub fn begin(&mut self, name: &str, parent: usize) -> usize {
        assert!(parent < self.nodes.len(), "parent span out of range");
        let start = self.now();
        self.nodes.push(SpanNode {
            name: name.to_string(),
            parent: Some(parent),
            start,
            end: None,
            attrs: Vec::new(),
        });
        self.nodes.len() - 1
    }

    /// Closes span `idx` now. Closing twice keeps the first end.
    pub fn end(&mut self, idx: usize) {
        let now = self.now();
        let node = &mut self.nodes[idx];
        if node.end.is_none() {
            node.end = Some(now);
        }
    }

    /// Adds an already-measured child span under `parent` with
    /// explicit `[start, end]` offsets from the trace origin — for
    /// stages whose durations were measured elsewhere (engine stage
    /// timers, queue waits).
    pub fn add_span(&mut self, parent: usize, name: &str, start: Duration, end: Duration) -> usize {
        assert!(parent < self.nodes.len(), "parent span out of range");
        self.nodes.push(SpanNode {
            name: name.to_string(),
            parent: Some(parent),
            start,
            end: Some(end.max(start)),
            attrs: Vec::new(),
        });
        self.nodes.len() - 1
    }

    /// Attaches an attribute to span `idx`.
    pub fn set_attr(&mut self, idx: usize, key: &str, value: impl Into<AttrValue>) {
        self.nodes[idx].attrs.push((key.to_string(), value.into()));
    }

    /// Start offset of span `idx` (for laying out synthesized child
    /// spans relative to a live parent).
    pub fn span_start(&self, idx: usize) -> Duration {
        self.nodes[idx].start
    }

    /// Ends every still-open span (root included) now and returns the
    /// root duration.
    pub fn finish(&mut self) -> Duration {
        let now = self.now();
        for node in &mut self.nodes {
            if node.end.is_none() {
                node.end = Some(now);
            }
        }
        self.nodes[ROOT_SPAN].duration()
    }

    /// Root span duration (zero until the root is closed).
    pub fn duration(&self) -> Duration {
        self.nodes[ROOT_SPAN].duration()
    }

    /// Indices of the direct children of `idx`, in creation order.
    pub fn children(&self, idx: usize) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].parent == Some(idx))
            .collect()
    }

    /// Chrome `trace_event` JSON export: an object with a
    /// `traceEvents` array of complete (`"ph": "X"`) events, one per
    /// span, with microsecond `ts`/`dur`, the trace id as `tid`, and
    /// span attributes under `args`. The output loads directly in
    /// `about:tracing` and Perfetto.
    pub fn to_chrome_trace(&self) -> JsonValue {
        let events = self
            .nodes
            .iter()
            .map(|node| {
                let end = node.end.unwrap_or(node.start);
                let args: Vec<(String, JsonValue)> = node
                    .attrs
                    .iter()
                    .map(|(k, v)| {
                        let value = match v {
                            AttrValue::Str(s) => JsonValue::Str(s.clone()),
                            AttrValue::Int(n) => JsonValue::Num(*n as f64),
                            AttrValue::Bool(b) => JsonValue::Bool(*b),
                        };
                        (k.clone(), value)
                    })
                    .collect();
                JsonValue::Obj(vec![
                    ("name".into(), JsonValue::Str(node.name.clone())),
                    ("cat".into(), JsonValue::Str("hunt".into())),
                    ("ph".into(), JsonValue::Str("X".into())),
                    ("ts".into(), JsonValue::Num(micros(node.start))),
                    (
                        "dur".into(),
                        JsonValue::Num(micros(end.saturating_sub(node.start))),
                    ),
                    ("pid".into(), JsonValue::Num(1.0)),
                    ("tid".into(), JsonValue::Num(self.id.0 as f64)),
                    ("args".into(), JsonValue::Obj(args)),
                ])
            })
            .collect();
        JsonValue::Obj(vec![
            ("traceEvents".into(), JsonValue::Arr(events)),
            ("displayTimeUnit".into(), JsonValue::Str("ms".into())),
        ])
    }

    /// Indented plain-text rendering of the tree — the slow-hunt log
    /// display format.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.render_node(ROOT_SPAN, 0, &mut out);
        out
    }

    fn render_node(&self, idx: usize, depth: usize, out: &mut String) {
        let node = &self.nodes[idx];
        for _ in 0..depth {
            out.push_str("  ");
        }
        if idx == ROOT_SPAN {
            out.push_str(&format!("{} {}", self.id, node.name));
        } else {
            out.push_str(&format!("- {}", node.name));
        }
        out.push_str(&format!(" ({:.3?})", node.duration()));
        for (k, v) in &node.attrs {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        for child in self.children(idx) {
            self.render_node(child, depth + 1, out);
        }
    }
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1_000_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> TraceTree {
        let mut t = TraceTree::with_id(TraceId(42), "job");
        let wait = t.add_span(
            ROOT_SPAN,
            "queue_wait",
            Duration::ZERO,
            Duration::from_micros(50),
        );
        let exec = t.add_span(
            ROOT_SPAN,
            "exec",
            Duration::from_micros(50),
            Duration::from_micros(450),
        );
        let scan = t.add_span(
            exec,
            "scan:evt1",
            Duration::from_micros(60),
            Duration::from_micros(200),
        );
        t.set_attr(scan, "rows", 128usize);
        t.set_attr(exec, "cache_hit", true);
        t.set_attr(wait, "queued", "yes");
        let now = t.now().max(Duration::from_micros(500));
        t.nodes[ROOT_SPAN].end = Some(now);
        t
    }

    #[test]
    fn spans_nest_under_parents() {
        let mut t = TraceTree::new("root");
        let a = t.begin("a", ROOT_SPAN);
        let b = t.begin("b", a);
        t.end(b);
        t.end(a);
        let total = t.finish();
        assert_eq!(t.nodes()[b].parent, Some(a));
        assert_eq!(t.nodes()[a].parent, Some(ROOT_SPAN));
        assert!(t.nodes()[b].start >= t.nodes()[a].start);
        assert!(t.nodes()[b].end.unwrap() <= t.nodes()[a].end.unwrap());
        assert!(total >= t.nodes()[a].duration());
        assert_eq!(t.children(ROOT_SPAN), vec![a]);
    }

    #[test]
    fn finish_closes_open_spans_once() {
        let mut t = TraceTree::new("root");
        let a = t.begin("a", ROOT_SPAN);
        t.end(a);
        let first_end = t.nodes()[a].end.unwrap();
        t.end(a); // double close keeps the first end
        assert_eq!(t.nodes()[a].end.unwrap(), first_end);
        t.finish();
        assert!(t.nodes().iter().all(|n| n.end.is_some()));
    }

    #[test]
    fn chrome_trace_is_valid_and_nested() {
        let t = sample_tree();
        let text = t.to_chrome_trace().pretty();
        let parsed = JsonValue::parse(&text).expect("schema-valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), t.nodes().len());

        // Every event is a complete ("X") event with the required keys.
        let mut spans: Vec<(String, f64, f64)> = Vec::new();
        for ev in events {
            assert_eq!(ev.get("ph").and_then(JsonValue::as_str), Some("X"));
            let name = ev.get("name").and_then(JsonValue::as_str).unwrap();
            let ts = ev.get("ts").and_then(JsonValue::as_f64).unwrap();
            let dur = ev.get("dur").and_then(JsonValue::as_f64).unwrap();
            assert!(ev.get("pid").and_then(JsonValue::as_f64).is_some());
            assert_eq!(ev.get("tid").and_then(JsonValue::as_f64), Some(42.0));
            assert!(dur >= 0.0);
            spans.push((name.to_string(), ts, dur));
        }

        // Nesting: each child's [ts, ts+dur] lies within its parent's.
        for (i, node) in t.nodes().iter().enumerate() {
            if let Some(p) = node.parent {
                let (_, cts, cdur) = &spans[i];
                let (_, pts, pdur) = &spans[p];
                assert!(cts >= pts, "child starts before parent");
                assert!(cts + cdur <= pts + pdur + 1e-6, "child outlives parent");
            }
        }

        // Attributes ride along in args.
        let scan = events
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("scan:evt1"))
            .unwrap();
        assert_eq!(
            scan.get("args")
                .and_then(|a| a.get("rows"))
                .and_then(JsonValue::as_f64),
            Some(128.0)
        );
    }

    #[test]
    fn text_rendering_shows_hierarchy_and_attrs() {
        let t = sample_tree();
        let text = t.render_text();
        assert!(text.starts_with("trace#42 job"));
        assert!(text.contains("- exec"));
        assert!(text.contains("cache_hit=true"));
        assert!(text.contains("rows=128"));
        // scan is indented one level deeper than exec
        let exec_indent = text.lines().find(|l| l.contains("- exec")).unwrap();
        let scan_indent = text.lines().find(|l| l.contains("- scan:evt1")).unwrap();
        let lead = |l: &str| l.len() - l.trim_start().len();
        assert_eq!(lead(scan_indent), lead(exec_indent) + 2);
    }

    #[test]
    fn trace_ids_are_unique() {
        let a = TraceTree::new("a").id();
        let b = TraceTree::new("b").id();
        assert_ne!(a, b);
    }
}
