//! Per-hunt execution profiles, end to end.
//!
//! Three views of the same hunt:
//!
//! 1. `EXPLAIN` — the compiled plan before running anything: pattern
//!    schedule, pushed-down filters, predicted shard fan-out.
//! 2. `EXPLAIN ANALYZE` — the plan annotated with actuals from one
//!    execution: per-pattern × per-shard rows scanned, propagation
//!    prunes, join selectivity, per-stage wall time.
//! 3. The server-side profile — every job submitted to a `HuntServer`
//!    carries a hierarchical trace tree; the worst ones land in the
//!    slow-hunt log, and any trace exports as Chrome `trace_event`
//!    JSON (load it at `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! Run with: `cargo run --release --example explain_hunt`

use std::time::Duration;
use threatraptor::prelude::*;
use threatraptor::{Registry, FIG2_TBQL};

fn main() {
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(8_000)
        .build();

    // ---- 1 + 2: EXPLAIN and EXPLAIN ANALYZE against a sharded store.
    let store = ShardedStore::ingest(&scenario.log, true, 4);
    let registry = Registry::new();
    let engine = ShardedEngine::new(&store).with_registry(&registry);

    println!("==== EXPLAIN ====\n");
    let plan = engine
        .explain(FIG2_TBQL, ExecMode::Scheduled)
        .expect("valid TBQL");
    println!("{}", plan.render());

    println!("==== EXPLAIN ANALYZE ====\n");
    let (result, report) = engine
        .explain_analyze(FIG2_TBQL, ExecMode::Scheduled)
        .expect("valid TBQL");
    println!("{}", report.render());
    assert!(!result.is_empty(), "the leakage attack must match");

    // The actuals in the report are the same numbers the engine put in
    // its `engine_rows_scanned_total{pattern,shard}` counters.
    let snapshot = registry.snapshot();
    let counted: u64 = snapshot
        .samples
        .iter()
        .filter(|s| s.name == "engine_rows_scanned_total")
        .filter_map(|s| match s.value {
            threatraptor::obs::SampleValue::Counter(v) => Some(v),
            _ => None,
        })
        .sum();
    assert_eq!(counted as usize, report.total_rows_scanned());
    println!(
        "rows-scanned actuals match the engine counters: {} rows\n",
        report.total_rows_scanned()
    );

    // ---- 3: server-side profiles and the slow-hunt log.
    let server = HuntServer::new(
        ServerConfig::with_ingest(IngestConfig::with_policy(SealPolicy::events(1_000)))
            .slow_hunt_capacity(8),
    );
    for chunk in LogFeed::by_events(&scenario.raw, 1_000) {
        server.append(&chunk.expect("well-formed log"));
    }
    assert!(server.wait_caught_up(Duration::from_secs(60)));

    let queries = [
        FIG2_TBQL,
        "proc p read file f return distinct p, f",
        FIG2_TBQL, // repeat: plan cache scores a hit
    ];
    let mut last = None;
    for q in queries {
        let handle = server.submit(HuntJob::tbql(q));
        last = Some((handle.id(), handle.trace_id()));
        handle.wait().outcome.expect("valid TBQL");
    }

    println!("==== slow-hunt log (worst first) ====\n");
    println!(
        "{:<6} {:<10} {:<10} {:>12} {:>12} {:>12}",
        "job", "trace", "status", "queue wait", "exec", "latency"
    );
    for p in server.slow_hunts() {
        println!(
            "{:<6} {:<10} {:<10} {:>12?} {:>12?} {:>12?}",
            p.job_id.to_string(),
            p.trace_id.to_string(),
            p.status,
            p.queue_wait,
            p.exec,
            p.latency,
        );
    }

    let (job_id, trace_id) = last.expect("at least one job ran");
    let profile = server.profile(job_id).expect("profiled job");
    assert_eq!(profile.trace_id, trace_id);

    println!("\n==== trace tree for {job_id} ====\n");
    print!("{}", profile.trace.render_text());

    let chrome = profile.trace.to_chrome_trace().pretty();
    let path = std::env::temp_dir().join("explain_hunt_trace.json");
    std::fs::write(&path, chrome + "\n").expect("writable temp dir");
    println!(
        "\nChrome trace written to {} (open in chrome://tracing)",
        path.display()
    );

    server.shutdown();
}
