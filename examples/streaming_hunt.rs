//! Hunting while the audit stream is still arriving: streaming ingest
//! with a standing (follow-mode) query.
//!
//! A data-leakage attack is buried in ~20k benign audit events. Instead
//! of ingesting the finished log and hunting afterwards, this example
//! replays the raw log as a timed stream of chunks into an
//! `IngestService` — appendable open window, incremental CPR, automatic
//! sealing — with a follow-mode hunt attached. The standing query fires
//! the moment the attack's behavior pattern is fully present, long
//! before the stream ends.
//!
//! Run with: `cargo run --release --example streaming_hunt`

use threatraptor::prelude::*;
use threatraptor_service::IngestService;

fn main() {
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(20_000)
        .build();
    println!(
        "replaying {} raw audit events as a live stream...\n",
        scenario.log.events.len()
    );

    // A live store: seal a shard every 2 000 open events, CPR on.
    let service = IngestService::new(IngestConfig::with_policy(SealPolicy::events(2_000)));

    // Attach the standing query (the paper's Fig. 2 hunt). It compiles
    // once; every poll afterwards re-evaluates the cached plan and
    // reports only newly appeared matches.
    let (mut hunt, _) = service
        .hunt_follow(threatraptor::FIG2_TBQL)
        .expect("valid TBQL");

    // Replay the raw log in ~1 500-event chunks, polling after each.
    for (i, chunk) in LogFeed::by_events(&scenario.raw, 1_500).enumerate() {
        let chunk = chunk.expect("well-formed log");
        let outcome = service.append(&chunk);
        let delta = service.poll(&mut hunt).expect("standing query executes");
        let status = service.status();
        print!(
            "chunk {i:>2}: +{:>5} events  [{} sealed shards | {:>5} open | {:.2}x reduced]",
            outcome.appended,
            status.sealed_shards,
            status.open_events,
            status.reduction.factor(),
        );
        if delta.is_empty() {
            println!();
        } else {
            println!("  ⚠ ALERT: {} new match(es)", delta.new_matches);
            for row in &delta.rows {
                println!("          {}", row.join(" | "));
            }
        }
    }

    // The accumulated result equals a from-scratch batch hunt.
    let merged = hunt.result().expect("polled at least once");
    println!(
        "\nstanding query `{}`\nfound {} match(es) over the whole stream:",
        hunt.tbql().lines().next().unwrap_or_default(),
        merged.matches.len()
    );
    println!("{}", merged.render_table());

    let batch = ThreatRaptor::from_parsed(&scenario.log, true);
    let reference = batch.hunt(threatraptor::FIG2_TBQL).expect("valid TBQL");
    assert_eq!(
        merged.matches.len(),
        reference.matches.len(),
        "streaming result must agree with batch ingestion"
    );
    println!("parity with batch ingestion: OK");
}
