//! The event-driven hunt server: standing queries fire over a live
//! stream with **no polling anywhere**.
//!
//! A data-leakage attack is buried in ~20k benign audit events. A
//! `HuntServer` owns the ingest pipeline; a feeder thread replays the
//! raw log chunk by chunk while the main thread just blocks on a
//! subscription channel — every append wakes the server's dispatcher,
//! which re-evaluates the standing query against one fresh snapshot and
//! pushes the delta. Ad-hoc hunts ride the same server through a bounded
//! job queue with completion handles.
//!
//! Run with: `cargo run --release --example live_server`

use std::time::Duration;
use threatraptor::prelude::*;
use threatraptor_service::HuntServer;

fn main() {
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(20_000)
        .build();
    println!(
        "serving a live stream of {} raw audit events...\n",
        scenario.log.events.len()
    );

    let server = HuntServer::new(ServerConfig::with_ingest(IngestConfig::with_policy(
        SealPolicy::events(2_000),
    )));

    // The standing query (the paper's Fig. 2 hunt): compiled once;
    // deltas will be *pushed* to this subscription as data arrives.
    let (alerts, _) = server.follow(threatraptor::FIG2_TBQL).expect("valid TBQL");

    let (delivered, adhoc) = std::thread::scope(|scope| {
        // Feeder: replays the raw log; each append wakes the dispatcher.
        // Midway it drops an ad-hoc hunt onto the job queue — the handle
        // resolves once a worker has run it against a then-current
        // snapshot, concurrent with ingest and dispatch.
        let feeder = scope.spawn(|| {
            let chunks: Vec<_> = LogFeed::by_events(&scenario.raw, 1_500)
                .map(|c| c.expect("well-formed log"))
                .collect();
            let mut adhoc = None;
            for (i, chunk) in chunks.iter().enumerate() {
                server.append(chunk);
                if i == chunks.len() / 2 {
                    adhoc = Some(server.submit(HuntJob::tbql(
                        "proc p[\"%/bin/tar%\"] read file f return distinct p, f",
                    )));
                }
            }
            assert!(server.wait_caught_up(Duration::from_secs(60)));
            server.shutdown(); // disconnects the subscription when done
            adhoc.expect("the feed has at least two chunks")
        });

        // Consumer: nothing but a blocking receive loop.
        let mut total = 0usize;
        for event in alerts.receiver().iter() {
            total += event.delta.new_matches;
            println!(
                "⚠ ALERT (epoch {:>3}): {} new match(es), delivered in {:?}",
                event.epoch, event.delta.new_matches, event.delta.elapsed
            );
            for row in &event.delta.rows {
                println!("    {}", row.join(" | "));
            }
        }
        (total, feeder.join().expect("feeder thread"))
    });

    let report = adhoc.wait();
    println!(
        "\nad-hoc {} (submitted mid-stream): {} row(s), {:?}",
        report.index,
        report.outcome.as_ref().map(|r| r.rows.len()).unwrap_or(0),
        report.elapsed,
    );

    // The pushed stream delivered exactly what a from-scratch batch hunt
    // finds — nothing duplicated, nothing lost.
    let batch = ThreatRaptor::from_parsed(&scenario.log, true);
    let reference = batch.hunt(threatraptor::FIG2_TBQL).expect("valid TBQL");
    println!(
        "\nstanding query delivered {delivered} match(es) push-only; batch reference: {}",
        reference.matches.len()
    );
    assert_eq!(
        delivered,
        reference.matches.len(),
        "event-driven delivery must be exactly-once"
    );
    println!("exactly-once delivery vs batch ingestion: OK");
}
