//! Threat behavior extraction on its own: OSCTI text in, behavior graph
//! out (Algorithm 1), with per-stage timings and a Graphviz rendering.
//!
//! ```text
//! cargo run --example oscti_extraction
//! ```

use threatraptor::prelude::*;

const REPORT: &str = "\
Incident write-up, defanged.\n\
\n\
The spearphishing attachment caused /usr/bin/soffice to write \
/tmp/stage1.elf. /tmp/stage1.elf connected to 203[.]0[.]113[.]80 and \
downloaded /tmp/.cache/agent. It wrote its persistence entry to \
/etc/cron.d/.updater. The agent reads /etc/passwd and /etc/shadow \
nightly, and uploads the stolen data to hxxp://drop[.]evil-panel[.]com/up.";

fn main() {
    let extractor = ThreatExtractor::new();
    let result = extractor.extract(REPORT);

    println!("-- canonical IOCs --");
    for (i, ioc) in result.iocs.canon.iter().enumerate() {
        println!("  [{i}] {} ({})", ioc.text, ioc.ty);
    }

    println!("\n-- threat behavior graph --");
    println!("{}", result.graph);

    println!("-- Graphviz --");
    println!("{}", result.graph.to_dot());

    let t = result.timings;
    println!("-- stage timings --");
    println!("  segmentation:  {:?}", t.segmentation);
    println!("  IOC+protect:   {:?}", t.protection);
    println!("  parsing:       {:?}", t.parsing);
    println!("  annotate:      {:?}", t.annotation);
    println!("  coref:         {:?}", t.coref);
    println!("  merge:         {:?}", t.merge);
    println!("  relations:     {:?}", t.relext);
    println!("  graph:         {:?}", t.construct);
    println!("  total:         {:?}", t.total);
}
