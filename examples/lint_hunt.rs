//! Query linting & temporal feasibility, end to end.
//!
//! Four views of the TBQL static analyzer:
//!
//! 1. Lint diagnostics — warnings (unused variables, dead patterns,
//!    redundant temporal constraints) rendered with source context.
//! 2. Compile-time rejection — infeasible queries (cyclic orderings,
//!    empty windows, contradictory filters) fail with stable `E...`
//!    codes before any row is scanned.
//! 3. Server-side rejection — the `HuntServer` refuses the same queries
//!    on every entry point, and the plan cache memoizes the rejection so
//!    resubmits don't recompile.
//! 4. Analysis-driven pruning — difference-bound-matrix (DBM) closure
//!    tightens each pattern's feasible time range; `EXPLAIN` predicts
//!    the clamp and `EXPLAIN ANALYZE` reports the rows it cut, in
//!    lockstep with the `engine_rows_pruned_total` metric.
//!
//! Run with: `cargo run --release --example lint_hunt`

use threatraptor::prelude::*;
use threatraptor::Registry;
use threatraptor_engine::EngineError;
use threatraptor_service::{HuntServer, ServerConfig, ServiceError};
use threatraptor_tbql::analyze::analyze;
use threatraptor_tbql::lint::lint;
use threatraptor_tbql::parser::parse_query;

fn main() {
    // ---- 1: lint a feasible query that still deserves warnings.
    let sloppy = "proc p read file f as e1\n\
                  proc p write file g as e2\n\
                  proc q execute file h as e3\n\
                  with e1 before e2\n\
                  return p, f, g";
    let report = lint(&analyze(&parse_query(sloppy).expect("parses")).expect("analyzes"));
    println!("==== lint report ====\n");
    print!("{}", report.render(sloppy));
    assert!(!report.has_errors(), "warnings only");
    assert!(
        report.diagnostics.iter().any(|d| d.code == "W002"),
        "e3 shares nothing with the returned entities: dead pattern"
    );

    // ---- 2: the infeasible corpus is rejected at compile time.
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(5_000)
        .build();
    let store = ShardedStore::ingest(&scenario.log, true, 4);
    let registry = Registry::new();
    let engine = ShardedEngine::new(&store).with_registry(&registry);

    println!("\n==== compile-time rejections ====\n");
    let corpus = [
        (
            "cyclic ordering",
            "proc p read file f as e1 proc p write file g as e2 \
             with e1 before e2, e2 before e1 return p",
        ),
        (
            "empty window",
            "proc p read file f as e1 window [900, 100] return p, f",
        ),
        (
            "contradictory filters",
            "proc p[\"/bin/tar\"] read file f as e1 \
             proc p[\"/bin/gzip\"] write file g as e2 return p, f, g",
        ),
    ];
    for (label, q) in corpus {
        match engine.hunt(q) {
            Err(EngineError::Infeasible(diags)) => {
                let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
                println!("{label}: rejected with {codes:?}");
            }
            other => panic!("{label} must be infeasible, got {other:?}"),
        }
    }

    // ---- 3: the server refuses the same queries, memoizing rejections.
    let server = HuntServer::new(ServerConfig::default());
    for (_, q) in corpus {
        for _ in 0..2 {
            assert!(matches!(server.hunt(q), Err(ServiceError::Infeasible(_))));
        }
    }
    let stats = server.cache_stats();
    println!(
        "\nserver: {} rejections memoized, {} resubmits served from cache",
        stats.rejections, stats.rejection_hits
    );
    assert_eq!(stats.rejections, corpus.len());
    assert_eq!(stats.rejection_hits, corpus.len());
    server.shutdown();

    // ---- 4: DBM bounds prune scans, predicted and measured.
    // `e1 before e2` plus e2's window caps how late e1 can end, so the
    // closure hands e1 a tighter upper bound than its (absent) window.
    let mid = store.event_at(store.event_count() / 2).start;
    let prunable = format!(
        "proc p read file f as e1\n\
         proc p write file g as e2 window [0, {mid}]\n\
         with e1 before e2\n\
         return p, f, g"
    );
    println!("\n==== EXPLAIN ANALYZE with DBM clamping ====\n");
    let (result, explained) = engine
        .explain_analyze(&prunable, ExecMode::Scheduled)
        .expect("valid TBQL");
    println!("{}", explained.render());
    assert!(
        explained.entries.iter().any(|e| e.bounds.is_some()),
        "the closure must tighten e1 beyond its (absent) window"
    );
    let pruned = explained.total_rows_pruned();
    assert!(pruned > 0, "the clamp must actually cut rows here");
    assert_eq!(pruned, result.stats.total_rows_pruned());
    // The metric was bumped from the same per-pattern counts.
    let counted: u64 = registry
        .snapshot()
        .samples
        .iter()
        .filter(|s| s.name == "engine_rows_pruned_total")
        .filter_map(|s| match s.value {
            threatraptor::obs::SampleValue::Counter(v) => Some(v),
            _ => None,
        })
        .sum();
    assert_eq!(counted as usize, pruned);
    println!("rows pruned by feasible-range clamp: {pruned} (metric agrees)");
}
