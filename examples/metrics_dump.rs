//! The unified telemetry layer, end to end: drive a small `HuntServer`
//! (ingest + a standing query + ad-hoc jobs), then dump its complete
//! `MetricsSnapshot` in both exposition formats.
//!
//! Every number printed here — storage gauges, plan-cache counters,
//! per-stage hunt latencies, job queue wait/execution histograms,
//! follow-delivery percentiles — comes out of one
//! `HuntServer::metrics()` call; nothing is measured by this example
//! itself.
//!
//! Run with: `cargo run --release --example metrics_dump`

use std::time::Duration;
use threatraptor::prelude::*;
use threatraptor_service::HuntServer;

fn main() {
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(8_000)
        .build();

    let server = HuntServer::new(ServerConfig::with_ingest(IngestConfig::with_policy(
        SealPolicy::events(1_000),
    )));

    // A standing query exercises the follow/dispatch path…
    let (alerts, _) = server.follow(threatraptor::FIG2_TBQL).expect("valid TBQL");
    // …ingest exercises the storage/serving path…
    for chunk in LogFeed::by_events(&scenario.raw, 800) {
        server.append(&chunk.expect("well-formed log"));
    }
    // …and a few ad-hoc jobs exercise the queue and hunt-stage paths.
    for q in [
        threatraptor::FIG2_TBQL,
        "proc p read file f return distinct p, f",
        threatraptor::FIG2_TBQL, // a repeat: the plan cache scores a hit
    ] {
        let result = server.hunt(q).expect("valid TBQL");
        let _ = result.matches.len();
    }
    assert!(server.wait_caught_up(Duration::from_secs(60)));
    // Drain the pushed deltas (not required for metrics; keeps the
    // subscription honest).
    while alerts.try_recv().is_ok() {}

    let snapshot = server.metrics();
    server.shutdown();

    println!("==== Prometheus exposition ====\n");
    print!("{}", snapshot.to_prometheus());

    println!("\n==== JSON exposition ====\n");
    println!("{}", snapshot.to_json());

    // The snapshot must carry every lifecycle family this run exercised.
    for name in [
        "storage_appends_total",
        "plan_cache_hits_total",
        "jobs_completed_total",
        "follow_deliveries_total",
    ] {
        assert!(
            snapshot.counter(name).is_some_and(|v| v > 0),
            "expected non-zero counter {name}"
        );
    }
    assert!(
        snapshot
            .histogram("job_latency_ns", &[("status", "ok")])
            .is_some_and(|h| h.count > 0),
        "job latency histogram must be populated"
    );
    assert!(
        snapshot
            .histogram("hunt_stage_ns", &[("stage", "scan")])
            .is_some_and(|h| h.count > 0),
        "per-stage hunt spans must be populated"
    );
    println!("\nall lifecycle metric families populated: OK");
}
