//! Quickstart: the complete ThreatRaptor pipeline in ~30 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Simulates an audited host (benign activity + the paper's Fig. 2
//! data-leakage attack), then hunts for the attack directly from the
//! threat-intelligence text.

use threatraptor::prelude::*;

fn main() {
    // 1. Audit logs. The simulator stands in for a Sysdig-audited host;
    //    any Sysdig-like raw log can be loaded with
    //    `ThreatRaptor::from_raw_log` instead.
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(20_000)
        .build();
    println!(
        "audited host: {} events, {} entities",
        scenario.log.events.len(),
        scenario.log.entities.len()
    );

    // 2. Ingest into the dual relational/graph store (with CPR).
    let raptor = ThreatRaptor::from_parsed(&scenario.log, true);

    // 3. Hunt straight from OSCTI text: extraction → synthesis →
    //    execution.
    let outcome = raptor
        .hunt_report(threatraptor::FIG2_OSCTI_TEXT)
        .expect("the described behavior is present in the logs");

    println!("\n-- extracted threat behavior graph --");
    println!("{}", outcome.extraction.graph);
    println!("-- synthesized TBQL --");
    println!("{}", outcome.tbql);
    println!("-- matched system auditing records --");
    println!("{}", outcome.result.render_table());
}
