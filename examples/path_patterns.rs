//! Variable-length event path patterns (the paper's advanced syntax):
//! `proc p ~>(m~n)[op] file f` matches multi-hop flows even when the
//! OSCTI text elides the intermediate processes.
//!
//! ```text
//! cargo run --example path_patterns
//! ```

use threatraptor::prelude::*;

fn main() {
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(30_000)
        .build();
    let raptor = ThreatRaptor::from_parsed(&scenario.log, true);

    // Direct syntax: information flow from the tar process into the
    // encrypted staging file, crossing 1..4 events (tar → upload.tar →
    // bzip2 → upload.tar.bz2 → …).
    let q = r#"proc p["%/bin/tar%"] ~>(1~4)[write] file f["%/tmp/upload%"] as flow
               return distinct p, f"#;
    let result = raptor.hunt(q).expect("path query executes");
    println!("-- 1..4-hop write flows from /bin/tar into /tmp/upload* --");
    println!("{}", result.render_table());
    for m in result.matches.iter().take(5) {
        println!("  witness path: {} hops", m.events["flow"].len());
    }

    // Synthesis with the user-defined path plan: every report edge
    // becomes a tolerant path pattern instead of a single event.
    let extraction = ThreatExtractor::new().extract(threatraptor::FIG2_OSCTI_TEXT);
    let query = threatraptor::synth::synthesize_with_plan(
        &extraction.graph,
        &PathPatternPlan {
            min_hops: 1,
            max_hops: 2,
        },
    )
    .expect("synthesizes");
    println!("-- Fig. 2 synthesized with the path-pattern plan --");
    println!("{}", print_query(&query));
    let result = raptor
        .store()
        .pipe_hunt(&query)
        .expect("path-plan query executes");
    println!("matches: {}", result.matches.len());
}

/// Small helper so the example reads top-to-bottom.
trait PipeHunt {
    fn pipe_hunt(
        &self,
        q: &threatraptor::tbql::ast::Query,
    ) -> Result<threatraptor::HuntResult, threatraptor::EngineError>;
}

impl PipeHunt for threatraptor::AuditStore {
    fn pipe_hunt(
        &self,
        q: &threatraptor::tbql::ast::Query,
    ) -> Result<threatraptor::HuntResult, threatraptor::EngineError> {
        Engine::new(self).hunt_query(q, ExecMode::Scheduled)
    }
}
