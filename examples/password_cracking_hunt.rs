//! The paper's first demonstration attack (§III): password cracking
//! after Shellshock penetration — hunted end-to-end from its OSCTI
//! report, among three other attacks and heavy benign noise.
//!
//! ```text
//! cargo run --example password_cracking_hunt
//! ```

use threatraptor::prelude::*;
use threatraptor_bench::all_cases;

fn main() {
    // All four attacks happen on the same host; the report describes
    // only the password-cracking one, so only it must match.
    let scenario = ScenarioBuilder::new()
        .seed(99)
        .attacks(&[
            AttackKind::DataLeakage,
            AttackKind::PasswordCrack,
            AttackKind::MalwareDrop,
            AttackKind::DbExfil,
        ])
        .target_events(60_000)
        .build();
    let raptor = ThreatRaptor::from_parsed(&scenario.log, true);

    let case = all_cases()
        .into_iter()
        .find(|c| c.kind == AttackKind::PasswordCrack)
        .expect("case exists");
    println!("-- OSCTI report --\n{}\n", case.report);

    let outcome = raptor.hunt_report(case.report).expect("attack present");
    println!("-- synthesized TBQL --\n{}", outcome.tbql);
    println!("-- matches --\n{}", outcome.result.render_table());

    let gt = scenario.ground_truth("password_crack");
    let (p, r) = outcome.result.precision_recall(raptor.store(), &gt);
    println!("precision {p:.2}, recall {r:.2} against ground truth");
    assert_eq!((p, r), (1.0, 1.0));
    println!("the cracker chain was isolated from 3 co-resident attacks + noise.");
}
