//! The paper's Fig. 2 demonstration, step by step, with ground-truth
//! evaluation — the long-form version of `quickstart`.
//!
//! ```text
//! cargo run --example data_leakage_hunt
//! ```

use threatraptor::prelude::*;
use threatraptor::synth;

fn main() {
    // A busy server: web traffic, builds, cron jobs, backups — and one
    // data-leakage attack buried inside.
    let scenario = ScenarioBuilder::new()
        .seed(7)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(60_000)
        .build();
    let store = AuditStore::ingest(&scenario.log, true);
    println!(
        "store: {} events after CPR (reduction {:.2}x), {} entities",
        store.event_count(),
        store.reduction.factor(),
        store.entities.len()
    );

    // Step 1: extract the threat behavior graph from the report.
    let extraction = ThreatExtractor::new().extract(threatraptor::FIG2_OSCTI_TEXT);
    println!("\nstep 1 — extraction:\n{}", extraction.graph);

    // Step 2: synthesize the TBQL query.
    let query = synth::synthesize(&extraction.graph).expect("auditable behavior present");
    let tbql = print_query(&query);
    println!("step 2 — synthesized TBQL:\n{tbql}");

    // Step 3: execute, comparing all strategies.
    let engine = Engine::new(&store);
    for mode in [
        ExecMode::Scheduled,
        ExecMode::Unscheduled,
        ExecMode::RelationalOnly,
        ExecMode::GraphOnly,
    ] {
        let result = engine.hunt_query(&query, mode).expect("query executes");
        let gt = scenario.ground_truth("data_leakage");
        let (p, r) = result.precision_recall(&store, &gt);
        println!(
            "step 3 — {:<24} {:>9.3?}  precision {p:.2}  recall {r:.2}",
            mode.label(),
            result.stats.elapsed,
        );
    }

    // The matched records.
    let result = engine.hunt_query(&query, ExecMode::Scheduled).unwrap();
    println!("\nmatched records:\n{}", result.render_table());
    println!(
        "execution order (pruning scores first): {:?}",
        result.stats.execution_order
    );
}
