//! Writing TBQL by hand: filters, operators, temporal clauses,
//! projections — and what the engine compiles them into.
//!
//! ```text
//! cargo run --example custom_tbql
//! ```

use threatraptor::prelude::*;
use threatraptor::tbql;

fn main() {
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::PasswordCrack])
        .target_events(30_000)
        .build();
    let raptor = ThreatRaptor::from_parsed(&scenario.log, true);

    // Who reads /etc/shadow? (Only the cracker should.)
    let q1 = r#"proc p read file f["%/etc/shadow%"] as e1
                return distinct p, p.pid, p.owner"#;
    println!("-- query 1: shadow readers --");
    println!("{}", raptor.hunt(q1).unwrap().render_table());

    // Processes that first write then execute the same file (dropper
    // pattern), with operation alternatives and a temporal clause.
    let q2 = r#"proc a write file f["%/tmp/%"] as w
                proc b execute f as x
                with w before x
                return distinct a, f, b"#;
    println!("-- query 2: write-then-execute droppers under /tmp --");
    println!("{}", raptor.hunt(q2).unwrap().render_table());

    // Compound filters: root-owned shells talking to the network.
    let q3 = r#"proc p[exename like "%sh" && owner = "www-data"] fork proc c as e1
                return distinct p, c"#;
    println!("-- query 3: www-data shells forking children --");
    println!("{}", raptor.hunt(q3).unwrap().render_table());

    // What a query compiles into (SQL text of the first pattern).
    let parsed = tbql::parser::parse_query(q1).unwrap();
    let analyzed = tbql::analyze::analyze(&parsed).unwrap();
    let compiled = threatraptor::engine::compile::compile(&analyzed).unwrap();
    println!("-- query 1, pattern 1, compiled to SQL --");
    println!(
        "{}",
        compiled
            .event_plan(&compiled.patterns[0], &Default::default())
            .to_sql()
    );

    // Diagnostics: a broken query produces a spanned error.
    let err = raptor.hunt("proc p read file f return ghost").unwrap_err();
    println!("-- diagnostics --\n{err}");
}
