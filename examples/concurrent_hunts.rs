//! Concurrent hunting with the service layer: one sharded store, many
//! simultaneous hunts with mixed intelligence sources.
//!
//! Run with: `cargo run --release --example concurrent_hunts`

use threatraptor::prelude::*;
use threatraptor_bench::all_cases;

fn main() {
    // A server under both a data-leakage and a password-cracking attack,
    // buried in ~40k benign audit events.
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage, AttackKind::PasswordCrack])
        .target_events(40_000)
        .build();

    let raptor = ThreatRaptor::from_parsed(&scenario.log, true);
    println!(
        "ingested {} events ({}x reduced by CPR)\n",
        raptor.store().event_count(),
        format_args!("{:.1}", raptor.store().reduction.factor()),
    );

    // Open the service layer: 8 time-window shards, a worker per core.
    let service = raptor.service(ServiceConfig::with_shards(8));
    println!(
        "service: {} shards, {} workers\n",
        service.store().shard_count(),
        service.config().workers,
    );

    // A mixed batch: hunt the data-leakage case from its raw OSCTI report
    // (full extraction + synthesis) and the password-cracking case from an
    // analyst-written TBQL query — several times each, as a production
    // queue would see.
    let cases = all_cases();
    let mut jobs = Vec::new();
    for _ in 0..3 {
        jobs.push(HuntJob::report(cases[0].report)); // data leakage (OSCTI)
        jobs.push(HuntJob::tbql(cases[1].reference_tbql)); // password crack (TBQL)
    }

    let reports = service.run(jobs);
    for report in &reports {
        match &report.outcome {
            Ok(result) => println!(
                "job {:>2} [{}] {:>5} matches  {:>8.2?}  cache_hit={}",
                report.index,
                report.job.kind(),
                result.matches.len(),
                report.elapsed,
                report.cache_hit,
            ),
            Err(e) => println!("job {:>2} failed: {e}", report.index),
        }
    }

    let stats = service.cache_stats();
    println!(
        "\nplan cache: {} plans, {} syntheses, {:.0}% hit rate",
        stats.plans,
        stats.reports,
        stats.hit_ratio() * 100.0
    );

    // Show one result table: the matched auditing records of the first
    // data-leakage hunt.
    if let Ok(result) = &reports[0].outcome {
        println!(
            "\nmatched records (data leakage):\n{}",
            result.render_table()
        );
    }
}
