//! Streaming/batch parity: chunked append + seal must be
//! indistinguishable from one-shot ingestion.
//!
//! The streaming layer's contract (ISSUE 2 acceptance criterion): for
//! any seed log, replaying it in chunks through a `StreamingStore` —
//! with sealing interleaved under any policy — yields hunt results
//! byte-identical to `ShardedStore::ingest` of the same log, with
//! identical `ReductionStats` totals, under both relational and graph
//! execution modes. And a hunt issued mid-ingest runs against a
//! consistent snapshot without blocking further appends.

use proptest::prelude::*;
use threatraptor::prelude::*;
use threatraptor_audit::LogFeed;
use threatraptor_bench::all_cases;
use threatraptor_storage::{SealPolicy, StreamingStore};

/// Replays a scenario's raw log chunk-by-chunk into a streaming store.
fn stream_store(raw: &str, chunk: usize, policy: SealPolicy, cpr: bool) -> StreamingStore {
    let mut store = StreamingStore::new(cpr, policy);
    for part in LogFeed::by_events(raw, chunk) {
        store.append(&part.expect("simulator logs are well-formed"));
    }
    store
}

/// The core parity assertion: identical stored stream, identical
/// reduction totals, byte-identical hunt results.
fn assert_streaming_parity(
    seed: u64,
    chunk: usize,
    policy: SealPolicy,
    query: &str,
    mode: ExecMode,
) {
    let sc = ScenarioBuilder::new()
        .seed(seed)
        .attacks(&[AttackKind::DataLeakage, AttackKind::PasswordCrack])
        .target_events(2_500)
        .build();
    let batch = ShardedStore::ingest(&sc.log, true, 4);
    let streamed = stream_store(&sc.raw, chunk, policy, true).snapshot();

    // Identical global stream and statistics.
    assert_eq!(streamed.event_count(), batch.event_count());
    assert_eq!(streamed.reduction(), batch.reduction());
    for pos in (0..batch.event_count()).step_by(97) {
        assert_eq!(
            streamed.event_at(pos),
            batch.event_at(pos),
            "position {pos}"
        );
    }

    // Byte-identical hunt results (positions are global and identical, so
    // even row order agrees — no normalization needed).
    let want = ShardedEngine::new(&batch).hunt_mode(query, mode).unwrap();
    let got = ShardedEngine::new(&streamed)
        .hunt_mode(query, mode)
        .unwrap();
    assert_eq!(got.rows, want.rows, "seed {seed}, chunk {chunk}, {mode:?}");
    assert_eq!(
        got.matched_event_ids(&streamed),
        want.matched_event_ids(&batch)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: parity holds across scenario seeds, chunk sizes, seal
    /// thresholds, and the reference query corpus, under relational and
    /// graph execution alike.
    #[test]
    fn streamed_hunts_match_batch_ingest(
        seed in 0u64..5,
        chunk in prop::sample::select(vec![64usize, 333, 1_000]),
        seal_every in prop::sample::select(vec![150usize, 600, usize::MAX]),
        case in prop::sample::select(vec![0usize, 1]),
        mode in prop::sample::select(vec![ExecMode::RelationalOnly, ExecMode::GraphOnly]),
    ) {
        let policy = if seal_every == usize::MAX {
            SealPolicy::manual()
        } else {
            SealPolicy::events(seal_every)
        };
        let query = all_cases()[case].reference_tbql;
        assert_streaming_parity(seed, chunk, policy, query, mode);
    }

    /// Path patterns — multi-hop flows crossing seal boundaries — keep
    /// parity too (the scheduled mode exercises the hybrid planner).
    #[test]
    fn streamed_path_hunts_match_batch_ingest(
        seed in 0u64..3,
        chunk in prop::sample::select(vec![100usize, 450]),
    ) {
        assert_streaming_parity(
            seed,
            chunk,
            SealPolicy::events(300),
            "proc p[\"%/bin/tar%\"] ~>(1~3)[write] file f return distinct p, f",
            ExecMode::Scheduled,
        );
    }
}

/// CPR-off parity: the pass-through frontier preserves arrival order
/// exactly as batch no-CPR ingestion does.
#[test]
fn streaming_without_cpr_matches_batch() {
    let sc = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(2_000)
        .build();
    let batch = ShardedStore::ingest(&sc.log, false, 4);
    let streamed = stream_store(&sc.raw, 128, SealPolicy::events(400), false).snapshot();
    assert_eq!(streamed.event_count(), batch.event_count());
    assert_eq!(streamed.reduction(), batch.reduction());
    let want = ShardedEngine::new(&batch)
        .hunt(threatraptor::FIG2_TBQL)
        .unwrap();
    let got = ShardedEngine::new(&streamed)
        .hunt(threatraptor::FIG2_TBQL)
        .unwrap();
    assert_eq!(got.rows, want.rows);
}

/// The full service path: ingest through `IngestService` with hunts (and
/// a standing follow-mode query) issued mid-ingest; the final answer
/// matches batch ingestion, and mid-ingest answers are consistent
/// prefixes that never block appends.
#[test]
fn hunts_under_ingest_are_consistent_and_end_in_parity() {
    let sc = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(3_000)
        .build();
    let service = IngestService::new(IngestConfig::with_policy(SealPolicy::events(350)));
    let (mut follow, initial) = service.hunt_follow(threatraptor::FIG2_TBQL).unwrap();
    assert!(initial.is_empty());

    let mut match_counts = Vec::new();
    for chunk in LogFeed::by_events(&sc.raw, 500) {
        service.append(&chunk.unwrap());
        let mid = service.hunt(threatraptor::FIG2_TBQL).unwrap();
        match_counts.push(mid.matches.len());
        service.poll(&mut follow).unwrap();
    }

    // Mid-ingest match counts grow monotonically to the batch answer.
    let batch = ThreatRaptor::from_parsed(&sc.log, true);
    let want = batch.hunt(threatraptor::FIG2_TBQL).unwrap();
    assert!(match_counts.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(*match_counts.last().unwrap(), want.matches.len());

    // The follow hunt accumulated the same final answer.
    let merged = follow.result().unwrap();
    let norm = |rows: &[Vec<String>]| {
        let mut r = rows.to_vec();
        r.sort();
        r
    };
    assert_eq!(norm(&merged.rows), norm(&want.rows));
}
