//! Streaming/batch parity: chunked append + seal must be
//! indistinguishable from one-shot ingestion.
//!
//! The streaming layer's contract (ISSUE 2 acceptance criterion): for
//! any seed log, replaying it in chunks through a `StreamingStore` —
//! with sealing interleaved under any policy — yields hunt results
//! byte-identical to `ShardedStore::ingest` of the same log, with
//! identical `ReductionStats` totals, under both relational and graph
//! execution modes. And a hunt issued mid-ingest runs against a
//! consistent snapshot without blocking further appends.

use proptest::prelude::*;
use threatraptor::prelude::*;
use threatraptor_audit::LogFeed;
use threatraptor_bench::all_cases;
use threatraptor_storage::{SealPolicy, StreamingStore};

/// Replays a scenario's raw log chunk-by-chunk into a streaming store.
fn stream_store(raw: &str, chunk: usize, policy: SealPolicy, cpr: bool) -> StreamingStore {
    let mut store = StreamingStore::new(cpr, policy);
    for part in LogFeed::by_events(raw, chunk) {
        store.append(&part.expect("simulator logs are well-formed"));
    }
    store
}

/// The core parity assertion: identical stored stream, identical
/// reduction totals, byte-identical hunt results.
fn assert_streaming_parity(
    seed: u64,
    chunk: usize,
    policy: SealPolicy,
    query: &str,
    mode: ExecMode,
) {
    let sc = ScenarioBuilder::new()
        .seed(seed)
        .attacks(&[AttackKind::DataLeakage, AttackKind::PasswordCrack])
        .target_events(2_500)
        .build();
    let batch = ShardedStore::ingest(&sc.log, true, 4);
    let streamed = stream_store(&sc.raw, chunk, policy, true).snapshot();

    // Identical global stream and statistics.
    assert_eq!(streamed.event_count(), batch.event_count());
    assert_eq!(streamed.reduction(), batch.reduction());
    for pos in (0..batch.event_count()).step_by(97) {
        assert_eq!(
            streamed.event_at(pos),
            batch.event_at(pos),
            "position {pos}"
        );
    }

    // Byte-identical hunt results (positions are global and identical, so
    // even row order agrees — no normalization needed).
    let want = ShardedEngine::new(&batch).hunt_mode(query, mode).unwrap();
    let got = ShardedEngine::new(&streamed)
        .hunt_mode(query, mode)
        .unwrap();
    assert_eq!(got.rows, want.rows, "seed {seed}, chunk {chunk}, {mode:?}");
    assert_eq!(
        got.matched_event_ids(&streamed),
        want.matched_event_ids(&batch)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: parity holds across scenario seeds, chunk sizes, seal
    /// thresholds, and the reference query corpus, under relational and
    /// graph execution alike.
    #[test]
    fn streamed_hunts_match_batch_ingest(
        seed in 0u64..5,
        chunk in prop::sample::select(vec![64usize, 333, 1_000]),
        seal_every in prop::sample::select(vec![150usize, 600, usize::MAX]),
        case in prop::sample::select(vec![0usize, 1]),
        mode in prop::sample::select(vec![ExecMode::RelationalOnly, ExecMode::GraphOnly]),
    ) {
        let policy = if seal_every == usize::MAX {
            SealPolicy::manual()
        } else {
            SealPolicy::events(seal_every)
        };
        let query = all_cases()[case].reference_tbql;
        assert_streaming_parity(seed, chunk, policy, query, mode);
    }

    /// Path patterns — multi-hop flows crossing seal boundaries — keep
    /// parity too (the scheduled mode exercises the hybrid planner).
    #[test]
    fn streamed_path_hunts_match_batch_ingest(
        seed in 0u64..3,
        chunk in prop::sample::select(vec![100usize, 450]),
    ) {
        assert_streaming_parity(
            seed,
            chunk,
            SealPolicy::events(300),
            "proc p[\"%/bin/tar%\"] ~>(1~3)[write] file f return distinct p, f",
            ExecMode::Scheduled,
        );
    }
}

/// Stable identity of every match in a result: sorted bindings plus, per
/// pattern, the CPR run identity of each witness (entity pair, operation,
/// run start time) — the keying `FollowHunt` deduplicates deliveries by,
/// recomputed here from public API so the tests check the contract, not
/// the implementation.
fn identity_keys(
    matches: &[threatraptor_engine::result::Match],
    store: &threatraptor_storage::ShardedStore,
) -> Vec<String> {
    matches
        .iter()
        .map(|m| {
            let mut bindings: Vec<(String, u32)> =
                m.bindings.iter().map(|(v, id)| (v.clone(), id.0)).collect();
            bindings.sort();
            let mut pats: Vec<String> = m
                .events
                .iter()
                .map(|(pat, positions)| {
                    let witnesses: Vec<String> = positions
                        .iter()
                        .map(|&p| {
                            let e = store.event_at(p);
                            format!("{}>{}:{:?}@{}", e.subject.0, e.object.0, e.op, e.start)
                        })
                        .collect();
                    format!("{pat}={}", witnesses.join(","))
                })
                .collect();
            pats.sort();
            format!("{bindings:?}|{pats:?}")
        })
        .collect()
}

/// Adversarial tie generator (ISSUE 5): streams over a handful of entity
/// pairs where start times advance mostly by **zero** — equal-start
/// events on the same pair routinely straddle chunk boundaries, and
/// later arrivals with smaller `(end, id)` sort keys re-lead provisional
/// open-window runs. Exactly-once must hold anyway: across all polls, no
/// match identity is ever delivered twice, and the delivered identity
/// set equals a from-scratch batch hunt's.
mod tie_exactly_once {
    use super::*;
    use threatraptor_audit::entity::{Entity, EntityId};
    use threatraptor_audit::event::{Event, EventId, Operation};
    use threatraptor_service::PlanCache;
    use threatraptor_storage::ShardedStore;

    /// Per-event generator output: (pair selector, start advance,
    /// duration, mergeable?).
    type EventSpec = (usize, u64, u64, bool);

    fn build_events(specs: &[EventSpec], procs: &[EntityId], files: &[EntityId]) -> Vec<Event> {
        let mut start = 1u64;
        specs
            .iter()
            .enumerate()
            .map(|(i, &(pair, advance, dur, mergeable))| {
                start += advance;
                Event {
                    id: EventId(i as u32),
                    subject: procs[pair % procs.len()],
                    op: if mergeable {
                        Operation::Read
                    } else {
                        Operation::Open
                    },
                    object: files[(pair / procs.len()) % files.len()],
                    start,
                    end: start + dur,
                    bytes: 4,
                    merged: 1,
                    tag: None,
                }
            })
            .collect()
    }

    /// Replays `events` in chunks through a follow hunt, capturing each
    /// delivered match's identity **at delivery time, against the
    /// delivering snapshot** (positions are snapshot-relative; only the
    /// identity is stable across snapshots — that is the contract under
    /// test).
    fn stream_and_follow(
        entities: &[Entity],
        events: &[Event],
        chunk: usize,
        seal_every: usize,
        query: &str,
    ) -> (Vec<String>, ShardedStore) {
        let cache = PlanCache::new();
        let (plan, _) = cache.plan(query).expect("valid TBQL");
        let mut hunt = FollowHunt::new(plan, ExecMode::Scheduled, 1);
        let mut store = StreamingStore::new(true, SealPolicy::events(seal_every));
        store.append_batch(entities, &[]);
        hunt.poll(&store.snapshot()).expect("empty poll");
        let mut delivered_keys = Vec::new();
        for batch in events.chunks(chunk) {
            store.append_batch(&[], batch);
            let snapshot = store.snapshot();
            let delta = hunt.poll(&snapshot).expect("poll");
            let merged = &hunt.result().expect("polled").matches;
            let fresh = &merged[merged.len() - delta.new_matches..];
            delivered_keys.extend(identity_keys(fresh, &snapshot));
        }
        (delivered_keys, store.snapshot())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn tie_heavy_streams_deliver_each_identity_exactly_once(
            specs in prop::collection::vec(
                (
                    0usize..9,                                    // entity pair
                    prop::sample::select(vec![0u64, 0, 0, 0, 1]), // start advance: 80% ties
                    1u64..20,                                     // duration
                    prop::bool::weighted(0.8),                    // mostly mergeable reads
                ),
                1..120,
            ),
            chunk in prop::sample::select(vec![1usize, 3, 7, 16]),
            seal_every in prop::sample::select(vec![5usize, 17, usize::MAX - 1]),
        ) {
            let entities = ScenarioBuilder::new().seed(9).target_events(60).build().log.entities;
            let procs: Vec<EntityId> = entities
                .iter()
                .filter(|e| matches!(e, Entity::Process(_)))
                .map(|e| e.id())
                .take(3)
                .collect();
            let files: Vec<EntityId> = entities
                .iter()
                .filter(|e| matches!(e, Entity::File(_)))
                .map(|e| e.id())
                .take(3)
                .collect();
            // Deterministic seed: the scenario always has enough of each.
            prop_assert_eq!((procs.len(), files.len()), (3, 3));
            let events = build_events(&specs, &procs, &files);

            let query = "proc p read file f return p, f";
            let (mut keys, snapshot) =
                stream_and_follow(&entities, &events, chunk, seal_every, query);

            // Exactly-once, part 1: no identity is ever delivered twice.
            let total = keys.len();
            keys.sort();
            keys.dedup();
            prop_assert_eq!(keys.len(), total, "an identity was delivered twice");

            // Exactly-once, part 2: no identity lost and none phantom —
            // the delivered identity set equals the batch identity set
            // over the final snapshot. Set, not multiset, deliberately:
            // the batch side can hold several matches with one identity
            // (distinct events CPR left separate — an interleaving touch
            // — that still share pair, op, and start time), and
            // identity-keyed delivery collapses those to one alert by
            // design. That collapse is the documented contract
            // (`crates/service/src/follow.rs`), not an accident of this
            // test.
            let batch = ShardedEngine::new(&snapshot).hunt(query).unwrap();
            let mut batch_keys = identity_keys(&batch.matches, &snapshot);
            batch_keys.sort();
            batch_keys.dedup();
            prop_assert_eq!(keys, batch_keys);
        }
    }
}

/// CPR-off parity: the pass-through frontier preserves arrival order
/// exactly as batch no-CPR ingestion does.
#[test]
fn streaming_without_cpr_matches_batch() {
    let sc = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(2_000)
        .build();
    let batch = ShardedStore::ingest(&sc.log, false, 4);
    let streamed = stream_store(&sc.raw, 128, SealPolicy::events(400), false).snapshot();
    assert_eq!(streamed.event_count(), batch.event_count());
    assert_eq!(streamed.reduction(), batch.reduction());
    let want = ShardedEngine::new(&batch)
        .hunt(threatraptor::FIG2_TBQL)
        .unwrap();
    let got = ShardedEngine::new(&streamed)
        .hunt(threatraptor::FIG2_TBQL)
        .unwrap();
    assert_eq!(got.rows, want.rows);
}

/// The full service path: ingest through `IngestService` with hunts (and
/// a standing follow-mode query) issued mid-ingest; the final answer
/// matches batch ingestion, and mid-ingest answers are consistent
/// prefixes that never block appends.
#[test]
fn hunts_under_ingest_are_consistent_and_end_in_parity() {
    let sc = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(3_000)
        .build();
    let service = IngestService::new(IngestConfig::with_policy(SealPolicy::events(350)));
    let (mut follow, initial) = service.hunt_follow(threatraptor::FIG2_TBQL).unwrap();
    assert!(initial.is_empty());

    let mut match_counts = Vec::new();
    for chunk in LogFeed::by_events(&sc.raw, 500) {
        service.append(&chunk.unwrap());
        let mid = service.hunt(threatraptor::FIG2_TBQL).unwrap();
        match_counts.push(mid.matches.len());
        service.poll(&mut follow).unwrap();
    }

    // Mid-ingest match counts grow monotonically to the batch answer.
    let batch = ThreatRaptor::from_parsed(&sc.log, true);
    let want = batch.hunt(threatraptor::FIG2_TBQL).unwrap();
    assert!(match_counts.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(*match_counts.last().unwrap(), want.matches.len());

    // The follow hunt accumulated the same final answer.
    let merged = follow.result().unwrap();
    let norm = |rows: &[Vec<String>]| {
        let mut r = rows.to_vec();
        r.sort();
        r
    };
    assert_eq!(norm(&merged.rows), norm(&want.rows));
}
