//! Service-layer integration tests: sharded/single execution parity over
//! randomized scenarios and queries, plus concurrent-hunt smoke tests.

use proptest::prelude::*;
use std::collections::BTreeSet;
use threatraptor::prelude::*;
use threatraptor_bench::all_cases;
use threatraptor_service::{HuntJob, PlanCache, ServiceError};
use threatraptor_storage::{AuditStore, ShardedStore};

/// Order-normalized view of a hunt result: sorted projected rows plus the
/// set of matched original event ids.
fn normalized(
    r: &HuntResult,
    ids: BTreeSet<threatraptor::audit::event::EventId>,
) -> (
    Vec<Vec<String>>,
    BTreeSet<threatraptor::audit::event::EventId>,
) {
    let mut rows = r.rows.clone();
    rows.sort();
    (rows, ids)
}

/// The core parity assertion: for one scenario seed and query, execution
/// over `shards` shards returns exactly the records single-store
/// execution returns.
fn assert_parity(seed: u64, shards: usize, query: &str) {
    let sc = ScenarioBuilder::new()
        .seed(seed)
        .attacks(&[AttackKind::DataLeakage, AttackKind::PasswordCrack])
        .target_events(2_500)
        .build();
    let single = AuditStore::ingest(&sc.log, true);
    let sharded = ShardedStore::ingest(&sc.log, true, shards);

    let expected = Engine::new(&single).hunt(query).expect("single store");
    let got = ShardedEngine::new(&sharded).hunt(query).expect("sharded");

    let expected_norm = normalized(&expected, expected.matched_event_ids(&single));
    let got_norm = normalized(&got, got.matched_event_ids(&sharded));
    assert_eq!(
        got_norm, expected_norm,
        "sharded execution diverged (seed {seed}, {shards} shards)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: shard/single parity holds across scenario seeds, shard
    /// counts, and the reference query corpus — including shard counts
    /// large enough that attack chains straddle shard boundaries.
    #[test]
    fn sharded_hunts_match_single_store(
        seed in 0u64..6,
        shards in 1usize..24,
        case in prop::sample::select(vec![0usize, 1]),
    ) {
        let query = all_cases()[case].reference_tbql;
        assert_parity(seed, shards, query);
    }

    /// Parity also holds for path patterns, whose multi-hop flows are the
    /// hard case for partitioned execution.
    #[test]
    fn sharded_path_hunts_match_single_store(seed in 0u64..4, shards in 2usize..32) {
        assert_parity(
            seed,
            shards,
            "proc p[\"%/bin/tar%\"] ~>(1~3)[write] file f return distinct p, f",
        );
    }
}

#[test]
fn fig2_parity_all_shard_counts() {
    for shards in [1, 2, 3, 7, 8, 16, 64] {
        assert_parity(42, shards, threatraptor::FIG2_TBQL);
    }
}

/// Concurrency smoke test: ≥8 simultaneous hunts through one service,
/// every result identical to the sequential reference.
#[test]
fn eight_concurrent_hunts_agree_with_sequential() {
    let sc = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage, AttackKind::PasswordCrack])
        .target_events(4_000)
        .build();
    let raptor = ThreatRaptor::from_parsed(&sc.log, true);
    let service = raptor.service(ServiceConfig::with_shards(8).workers(8));

    let cases = all_cases();
    let jobs: Vec<HuntJob> = (0..16)
        .map(|i| HuntJob::tbql(cases[i % 2].reference_tbql))
        .collect();
    let reports = service.run(jobs);
    assert_eq!(reports.len(), 16);

    let reference: Vec<_> = (0..2)
        .map(|i| raptor.hunt(cases[i].reference_tbql).unwrap())
        .collect();
    for (i, report) in reports.iter().enumerate() {
        assert_eq!(report.index, i);
        let result = report.outcome.as_ref().expect("hunt succeeds");
        assert_eq!(result.rows, reference[i % 2].rows, "job {i}");
        assert!(!result.is_empty());
    }
    // 16 jobs, 2 distinct plans: the cache must have absorbed the rest.
    // (Concurrent first touches of the same plan may each count a miss,
    // so bound the hits from below rather than exactly.)
    let stats = service.cache_stats();
    assert_eq!(stats.plans, 2);
    assert_eq!(stats.hits + stats.misses, 16);
    assert!(stats.hits >= 16 - 8, "cache absorbed too little: {stats:?}");
}

/// Raw threads hammering one service concurrently (beyond the scheduler's
/// own pool): the service must be freely shareable.
#[test]
fn service_is_shareable_across_threads() {
    let sc = ScenarioBuilder::new()
        .seed(3)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(2_000)
        .build();
    let raptor = ThreatRaptor::from_parsed(&sc.log, true);
    let service = raptor.service(ServiceConfig::with_shards(4).workers(2));
    let reference = service.hunt_tbql(threatraptor::FIG2_TBQL).unwrap();

    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                let r = service.hunt_tbql(threatraptor::FIG2_TBQL).unwrap();
                assert_eq!(r.rows, reference.rows);
            });
        }
    });
}

/// Mixed batches keep error isolation: one failing job must not poison
/// its neighbors.
#[test]
fn failing_jobs_are_isolated() {
    let sc = ScenarioBuilder::new().seed(42).target_events(2_000).build();
    let raptor = ThreatRaptor::from_parsed(&sc.log, true);
    // One worker: with a parallel pool, jobs 0 and 3 may both miss the
    // cache concurrently, making the final cache_hit assertion racy.
    let service = raptor.service(ServiceConfig::with_shards(4).workers(1));
    let reports = service.run(vec![
        HuntJob::tbql(threatraptor::FIG2_TBQL),
        HuntJob::tbql("syntactically broken"),
        HuntJob::report("Nothing interesting happened today."),
        HuntJob::tbql(threatraptor::FIG2_TBQL),
    ]);
    assert!(reports[0].outcome.is_ok());
    assert!(matches!(reports[1].outcome, Err(ServiceError::Engine(_))));
    assert!(matches!(
        reports[2].outcome,
        Err(ServiceError::Synthesis(_))
    ));
    assert!(reports[3].outcome.is_ok());
    assert!(reports[3].cache_hit, "plan from job 0 must be reused");
}

/// The plan cache returns byte-identical results for formatting variants
/// of one query.
#[test]
fn plan_cache_normalization_preserves_results() {
    let sc = ScenarioBuilder::new().seed(42).target_events(2_000).build();
    let sharded = ShardedStore::ingest(&sc.log, true, 4);
    let cache = std::sync::Arc::new(PlanCache::new());
    let sched = threatraptor_service::HuntScheduler::new(
        std::sync::Arc::new(sharded),
        std::sync::Arc::clone(&cache),
    )
    .workers(2);

    let original = threatraptor::FIG2_TBQL;
    let reformatted = original.split_whitespace().collect::<Vec<_>>().join("  ");
    let a = sched.hunt(original).unwrap();
    let b = sched.hunt(&reformatted).unwrap();
    assert_eq!(a.rows, b.rows);
    assert_eq!(cache.stats().plans, 1, "one plan serves both spellings");
}
