//! Failure injection across layer boundaries: malformed logs, malformed
//! queries, unauditable intelligence, contradictory constraints.

use threatraptor::prelude::*;
use threatraptor::{ThreatRaptor, ThreatRaptorError};

fn raptor() -> ThreatRaptor {
    let sc = ScenarioBuilder::new()
        .seed(1)
        .no_attacks()
        .target_events(2_000)
        .build();
    ThreatRaptor::from_parsed(&sc.log, true)
}

#[test]
fn malformed_raw_logs_are_rejected_with_line_numbers() {
    let cases = [
        ("only\tthree\tfields", "11 tab-separated"),
        (
            "x\t2\t1\t/bin/ls\troot\t0\t/bin/ls\tread\tF|/tmp/a\t0\t-",
            "bad start timestamp",
        ),
        (
            "5\t2\t1\t/bin/ls\troot\t0\t/bin/ls\tread\tF|/tmp/a\t0\t-",
            "ends",
        ),
        (
            "1\t2\t1\t/bin/ls\troot\t0\t/bin/ls\tfly\tF|/tmp/a\t0\t-",
            "unknown operation",
        ),
        (
            "1\t2\t1\t/bin/ls\troot\t0\t/bin/ls\tread\tN|1.2.3.4|80|5.6.7.8|443|tcp\t0\t-",
            "cannot target",
        ),
    ];
    for (line, needle) in cases {
        let err = ThreatRaptor::from_raw_log(line, false).unwrap_err();
        let ThreatRaptorError::Parse(p) = err else {
            panic!("expected parse error for {line:?}");
        };
        assert!(p.message.contains(needle), "{line:?} → {p}");
        assert_eq!(p.line, 1);
    }
}

#[test]
fn malformed_tbql_is_rejected_with_spans() {
    let raptor = raptor();
    let cases = [
        ("", "at least one"),
        ("return p", "at least one"),
        ("proc p read file f", "return"),
        ("proc p levitate file f return p", "unknown operation"),
        ("proc p read file f return ghost", "unknown entity"),
        (
            "proc p read file f as e1 with e1 before e1 return p",
            "precede itself",
        ),
        // Cyclic ordering is caught by the DBM feasibility pass with a
        // stable diagnostic code rather than a bespoke analyzer message.
        (
            "proc p read file f as e1 proc p write file g as e2 \
             with e1 before e2, e2 before e1 return p",
            "error[E001]",
        ),
        ("file f read file g return f", "must be a proc"),
        ("proc p connect file f return p", "targets ip"),
        (r#"proc p[name = "x"] read file f return p"#, "no attribute"),
        ("proc p ~>(4~2)[read] file f return p", "reversed"),
    ];
    for (query, needle) in cases {
        let err = raptor.hunt(query).unwrap_err();
        assert!(err.to_string().contains(needle), "query {query:?} → {err}");
    }
}

#[test]
fn unauditable_intelligence_fails_synthesis_not_execution() {
    let raptor = raptor();
    // Hash- and domain-only intel: everything screens out.
    let err = raptor
        .hunt_report("The sample d41d8cd98f00b204e9800998ecf8427e beacons to evil-cdn.com hourly.")
        .unwrap_err();
    assert!(matches!(err, ThreatRaptorError::Synthesis(_)), "{err}");

    // No relations at all.
    let err = raptor
        .hunt_report("Quarterly earnings were strong.")
        .unwrap_err();
    assert!(matches!(err, ThreatRaptorError::Synthesis(_)));
}

#[test]
fn contradictory_windows_return_empty_not_error() {
    let raptor = raptor();
    let r = raptor
        .hunt("proc p read file f as e1 window [5, 6] return p")
        .unwrap();
    assert!(r.is_empty());
}

#[test]
fn empty_store_hunts_cleanly() {
    let raptor = ThreatRaptor::from_raw_log("# empty capture\n", true).unwrap();
    let r = raptor.hunt(threatraptor::FIG2_TBQL).unwrap();
    assert!(r.is_empty());
    assert_eq!(raptor.store().event_count(), 0);
}

#[test]
fn error_rendering_is_actionable() {
    let src = "proc p read file f\nreturn ghost";
    let err = raptor().hunt(src).unwrap_err();
    let ThreatRaptorError::Engine(threatraptor::EngineError::Semantic(e)) = err else {
        panic!("expected semantic error");
    };
    let rendered = e.render(src);
    assert!(rendered.contains("line 2"), "{rendered}");
    assert!(rendered.contains('^'), "{rendered}");
}
