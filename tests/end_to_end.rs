//! End-to-end integration: OSCTI report → extraction → synthesis →
//! execution → evaluation, across all four attack cases.

use threatraptor::prelude::*;
use threatraptor_bench::all_cases;

/// One shared multi-attack scenario (building it is the expensive part).
fn scenario() -> threatraptor::audit::sim::scenario::Scenario {
    ScenarioBuilder::new()
        .seed(42)
        .attacks(&[
            AttackKind::DataLeakage,
            AttackKind::PasswordCrack,
            AttackKind::MalwareDrop,
            AttackKind::DbExfil,
        ])
        .target_events(30_000)
        .build()
}

#[test]
fn every_case_hunts_exactly_from_its_report() {
    let sc = scenario();
    let raptor = ThreatRaptor::from_parsed(&sc.log, true);
    for case in all_cases() {
        let outcome = raptor
            .hunt_report(case.report)
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        assert!(!outcome.result.is_empty(), "{} must match", case.name);
        let gt = sc.ground_truth(case.kind.case_name());
        assert_eq!(gt.len() as u32, case.kind.hunted_step_count());
        let (p, r) = outcome.result.precision_recall(raptor.store(), &gt);
        assert_eq!(
            (p, r),
            (1.0, 1.0),
            "{}: expected exact hunt, got precision {p} recall {r}",
            case.name
        );
    }
}

#[test]
fn reports_do_not_cross_match() {
    // The data-leakage report must not match password-crack ground truth
    // and vice versa — queries are attack-specific.
    let sc = scenario();
    let raptor = ThreatRaptor::from_parsed(&sc.log, true);
    let leak = raptor
        .hunt_report(threatraptor::FIG2_OSCTI_TEXT)
        .expect("hunts");
    let crack_gt = sc.ground_truth("password_crack");
    let matched = leak.result.matched_event_ids(raptor.store());
    for id in crack_gt {
        assert!(
            !matched.contains(&id),
            "data-leakage query matched a password-crack event"
        );
    }
}

#[test]
fn all_modes_agree_on_every_case() {
    let sc = scenario();
    let raptor = ThreatRaptor::from_parsed(&sc.log, true);
    for case in all_cases() {
        let reference = raptor
            .hunt_mode(case.reference_tbql, ExecMode::Scheduled)
            .unwrap();
        for mode in [
            ExecMode::Unscheduled,
            ExecMode::RelationalOnly,
            ExecMode::GraphOnly,
        ] {
            let r = raptor.hunt_mode(case.reference_tbql, mode).unwrap();
            assert_eq!(
                r.rows, reference.rows,
                "{}: {mode:?} differs from scheduled",
                case.name
            );
        }
    }
}

#[test]
fn cpr_does_not_change_any_hunt() {
    let sc = scenario();
    let plain = ThreatRaptor::from_parsed(&sc.log, false);
    let reduced = ThreatRaptor::from_parsed(&sc.log, true);
    assert!(reduced.store().event_count() < plain.store().event_count());
    for case in all_cases() {
        let a = plain.hunt(case.reference_tbql).unwrap();
        let b = reduced.hunt(case.reference_tbql).unwrap();
        assert_eq!(a.rows, b.rows, "{}: CPR changed results", case.name);
    }
}

#[test]
fn raw_log_round_trip_preserves_hunting() {
    let sc = ScenarioBuilder::new()
        .seed(9)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(8_000)
        .build();
    // Through the parsed log.
    let a = ThreatRaptor::from_parsed(&sc.log, true);
    // Through the raw Sysdig-like text.
    let b = ThreatRaptor::from_raw_log(&sc.raw, true).expect("raw parses");
    let ra = a.hunt(threatraptor::FIG2_TBQL).unwrap();
    let rb = b.hunt(threatraptor::FIG2_TBQL).unwrap();
    assert_eq!(ra.rows, rb.rows);
}

#[test]
fn hunting_without_the_attack_matches_nothing() {
    let sc = ScenarioBuilder::new()
        .seed(5)
        .no_attacks()
        .target_events(8_000)
        .build();
    let raptor = ThreatRaptor::from_parsed(&sc.log, true);
    // Benign logs: the full query must not fire (benign tar reads exist,
    // but the 8-step chain does not).
    let r = raptor.hunt(threatraptor::FIG2_TBQL).unwrap();
    assert!(r.is_empty(), "no attack, no match:\n{}", r.render_table());
}

#[test]
fn path_plan_still_finds_the_attack() {
    let sc = scenario();
    let raptor = ThreatRaptor::from_parsed(&sc.log, true);
    let outcome = raptor
        .hunt_report_with_plan(
            threatraptor::FIG2_OSCTI_TEXT,
            &PathPatternPlan {
                min_hops: 1,
                max_hops: 2,
            },
        )
        .expect("path plan hunts");
    assert!(!outcome.result.is_empty());
    // Recall stays perfect; paths may legitimately widen precision.
    let gt = sc.ground_truth("data_leakage");
    let (_, recall) = outcome.result.precision_recall(raptor.store(), &gt);
    assert_eq!(recall, 1.0);
}
