//! EXPLAIN ANALYZE ↔ metrics consistency: the per-pattern × per-shard
//! rows-scanned actuals a report carries must exactly equal what the
//! engine's `engine_rows_scanned_total{pattern,shard}` counters
//! recorded for the same hunt — both are collected from the same
//! execution, so any drift is a bug in one of the two paths.

use std::sync::Arc;
use threatraptor::prelude::*;
use threatraptor::Registry;
use threatraptor_engine::ExplainReport;
use threatraptor_tbql::parser::FIG2_TBQL;

const SHARDS: usize = 4;

fn store() -> ShardedStore {
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(6_000)
        .build();
    ShardedStore::ingest(&scenario.log, true, SHARDS)
}

fn counter(registry: &Registry, pattern: &str, shard: usize) -> u64 {
    registry
        .snapshot()
        .get(
            "engine_rows_scanned_total",
            &[("pattern", pattern), ("shard", &shard.to_string())],
        )
        .and_then(|s| match s.value {
            threatraptor::obs::SampleValue::Counter(v) => Some(v),
            _ => None,
        })
        .unwrap_or(0)
}

fn assert_actuals_match_counters(registry: &Registry, report: &ExplainReport, runs: u64) {
    let actuals = report.actuals.as_ref().expect("analyze attaches actuals");
    assert!(!actuals.patterns.is_empty());
    for p in &actuals.patterns {
        assert_eq!(p.shard_rows.len(), SHARDS, "pattern {}", p.pattern);
        for shard in 0..SHARDS {
            assert_eq!(
                counter(registry, &p.pattern, shard),
                runs * p.shard_rows[shard] as u64,
                "pattern {} shard {shard}: report actuals must equal the \
                 engine_rows_scanned_total counter",
                p.pattern
            );
        }
    }
}

#[test]
fn explain_analyze_rows_equal_engine_counters() {
    let store = store();
    let registry = Arc::new(Registry::new());
    let engine = ShardedEngine::new(&store).with_registry(&registry);

    let (result, report) = engine
        .explain_analyze(FIG2_TBQL, ExecMode::Scheduled)
        .expect("valid TBQL");
    assert!(!result.is_empty(), "the leakage attack must match");
    assert_actuals_match_counters(&registry, &report, 1);

    // The counters are cumulative across hunts while each report is
    // per-execution: a second identical run doubles every counter but
    // reports the same actuals.
    let (_, again) = engine
        .explain_analyze(FIG2_TBQL, ExecMode::Scheduled)
        .expect("valid TBQL");
    assert_actuals_match_counters(&registry, &again, 2);

    // Total attribution is consistent end to end.
    assert_eq!(report.total_rows_scanned(), result.stats.total_rows());
}

#[test]
fn unscheduled_mode_counters_stay_consistent() {
    // Unscheduled execution skips constraint propagation, so rows
    // scanned differ from scheduled mode — the counters must track the
    // mode actually executed, not the plan's default.
    let store = store();
    let registry = Arc::new(Registry::new());
    let engine = ShardedEngine::new(&store).with_registry(&registry);
    let (_, report) = engine
        .explain_analyze(FIG2_TBQL, ExecMode::Unscheduled)
        .expect("valid TBQL");
    assert_actuals_match_counters(&registry, &report, 1);
}

#[test]
fn plain_explain_records_no_counters() {
    let store = store();
    let registry = Arc::new(Registry::new());
    let engine = ShardedEngine::new(&store).with_registry(&registry);
    let report = engine
        .explain(FIG2_TBQL, ExecMode::Scheduled)
        .expect("valid TBQL");
    assert!(report.actuals.is_none());
    assert!(
        registry.snapshot().samples.is_empty(),
        "EXPLAIN must not execute the hunt"
    );
}
