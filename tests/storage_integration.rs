//! Storage-layer integration: ingest consistency between the relational
//! and graph backends, index/scan equivalence at store scale, and CPR
//! conservation laws on simulated workloads.

use threatraptor::prelude::*;
use threatraptor_storage::relational::Predicate;
use threatraptor_storage::{cpr, AuditStore};

fn store() -> (AuditStore, threatraptor::audit::sim::scenario::Scenario) {
    let sc = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(10_000)
        .build();
    (AuditStore::ingest(&sc.log, true), sc)
}

#[test]
fn relational_and_graph_views_are_consistent() {
    let (store, _) = store();
    // Same cardinalities.
    assert_eq!(store.graph.edge_count(), store.event_count());
    assert_eq!(store.graph.node_count(), store.entities.len());
    // Every stored event appears as the identical edge.
    for (pos, ev) in store.events.iter().enumerate().step_by(97) {
        let edges = store.graph.out_edges(ev.subject);
        assert!(
            edges.iter().any(|&e| store.graph.edge(e).event_pos == pos),
            "event {pos} missing from adjacency"
        );
    }
    // Per-entity degrees match event-table index lookups.
    let events = store.db.table(threatraptor_storage::store::TABLE_EVENT);
    for id in (0..store.entities.len() as u32).step_by(53) {
        let eid = threatraptor::audit::entity::EntityId(id);
        let via_index = events
            .index_lookup("subject", &[threatraptor_storage::Value::from(id)])
            .unwrap()
            .len();
        assert_eq!(via_index, store.graph.out_edges(eid).len());
    }
}

#[test]
fn event_table_select_matches_manual_filter() {
    let (store, _) = store();
    let events = store.db.table(threatraptor_storage::store::TABLE_EVENT);
    let selected = events.select(&Predicate::eq("op", "read"));
    let manual = store
        .events
        .iter()
        .filter(|e| e.op == threatraptor::audit::event::Operation::Read)
        .count();
    assert_eq!(selected.len(), manual);
}

#[test]
fn cpr_conserves_bytes_and_counts_at_scale() {
    let sc = ScenarioBuilder::new()
        .seed(7)
        .no_attacks()
        .target_events(20_000)
        .build();
    let (reduced, stats) = cpr::reduce(&sc.log.events);
    assert!(stats.factor() > 1.2, "bursty workloads compress: {stats:?}");
    let bytes_in: u64 = sc.log.events.iter().map(|e| e.bytes).sum();
    let bytes_out: u64 = reduced.iter().map(|e| e.bytes).sum();
    assert_eq!(bytes_in, bytes_out);
    let merged_total: u32 = reduced.iter().map(|e| e.merged).sum();
    assert_eq!(merged_total as usize, sc.log.events.len());
    // Time-ordering invariant.
    for w in reduced.windows(2) {
        assert!(w[0].start <= w[1].start);
    }
}

#[test]
fn entity_tables_cover_every_entity_exactly_once() {
    let (store, _) = store();
    let n = store.db.table("process").len()
        + store.db.table("file").len()
        + store.db.table("network").len();
    assert_eq!(n, store.entities.len());
    // The id column round-trips.
    let files = store.db.table("file");
    for (rid, row) in files.iter().take(50) {
        let id = row[files.col("id")].as_int().unwrap() as u32;
        let entity = store.entity(threatraptor::audit::entity::EntityId(id));
        assert_eq!(
            entity.as_file().unwrap().name,
            row[files.col("name")].as_str().unwrap(),
            "row {rid}"
        );
    }
}

#[test]
fn ground_truth_attack_chain_is_temporally_ordered_in_store() {
    let (store, sc) = store();
    let gt = sc.ground_truth("data_leakage");
    let mut times: Vec<(u32, u64)> = gt
        .iter()
        .map(|id| {
            let ev = store
                .events
                .iter()
                .find(|e| e.id == *id)
                .expect("hunted events survive CPR");
            (ev.tag.as_ref().unwrap().step, ev.start)
        })
        .collect();
    times.sort_unstable();
    for w in times.windows(2) {
        assert!(w[0].1 < w[1].1, "attack steps in order");
    }
}
