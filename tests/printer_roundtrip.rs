//! Printer round-trip property: parsing a query, canonical-printing it,
//! and re-parsing the printed text must yield the same AST (modulo
//! source spans) and the same semantic signature. This is what lets the
//! plan cache key formatting variants of one query to one plan, and the
//! EXPLAIN output echo a query that still parses.

use proptest::prelude::*;
use threatraptor_tbql::analyze::analyze;
use threatraptor_tbql::parser::{parse_query, FIG2_TBQL};
use threatraptor_tbql::printer::{print_query, strip_spans};

/// A strategy over well-formed TBQL source covering event and path
/// patterns, multi-op alternation, entity filters, windows, temporal
/// chains, and both projection modes.
fn arb_tbql() -> impl Strategy<Value = String> {
    let exe = prop::sample::select(vec!["%/bin/tar%", "%curl%", "%bash%"]);
    let file = prop::sample::select(vec!["%/etc/passwd%", "%.log%", "%/tmp/%"]);
    let op = prop::sample::select(vec!["read", "write", "read || write", "execute"]);
    let rel = prop::sample::select(vec!["before", "after"]);
    let window = prop::sample::select(vec![
        "",
        " window [0, 1000000]",
        " window [500, 2000000000]",
    ]);
    (
        exe,
        file,
        op,
        rel,
        window,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(exe, file, op, rel, window, two, path, distinct)| {
            let head = if path {
                format!("proc p[\"{exe}\"] ~>(1~3)[write] file f[\"{file}\"] as e1{window}")
            } else {
                format!("proc p[\"{exe}\"] {op} file f[\"{file}\"] as e1{window}")
            };
            let distinct = if distinct { "distinct " } else { "" };
            if two {
                format!(
                    "{head}\n\
                     proc p open || close file g as e2\n\
                     with e1 {rel} e2\n\
                     return {distinct}p, f, g"
                )
            } else {
                format!("{head}\nreturn {distinct}p, f")
            }
        })
}

/// Round-trips one source text and asserts AST and signature stability.
fn assert_roundtrip(src: &str) {
    let first = parse_query(src).expect("generated query must parse");
    let printed = print_query(&first);
    let second = parse_query(&printed)
        .unwrap_or_else(|e| panic!("printed form must re-parse: {e}\n{printed}"));
    let mut a = first.clone();
    let mut b = second.clone();
    strip_spans(&mut a);
    strip_spans(&mut b);
    assert_eq!(a, b, "AST must survive print → parse\n{printed}");
    // Printing is idempotent once canonical.
    assert_eq!(printed, print_query(&second));
    // And the semantic signature is untouched.
    let sig_a = analyze(&first).unwrap().canonical_signature();
    let sig_b = analyze(&second).unwrap().canonical_signature();
    assert_eq!(sig_a, sig_b);
}

#[test]
fn fig2_roundtrips() {
    assert_roundtrip(FIG2_TBQL);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn printed_queries_reparse_identically(src in arb_tbql()) {
        assert_roundtrip(&src);
    }
}
