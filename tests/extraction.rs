//! Integration tests for the NLP extraction pipeline over the full
//! annotated corpus.

use threatraptor_bench::corpus::corpus;
use threatraptor_bench::metrics::{extraction_scores, Prf};
use threatraptor_nlp::ThreatExtractor;

#[test]
fn corpus_extraction_meets_quality_bars() {
    let mut ioc = Prf::default();
    let mut rel = Prf::default();
    for report in corpus() {
        let (i, r) = extraction_scores(&report);
        ioc.merge(i);
        rel.merge(r);
    }
    assert!(
        ioc.precision() > 0.95,
        "IOC precision {:.3}",
        ioc.precision()
    );
    assert!(ioc.recall() > 0.95, "IOC recall {:.3}", ioc.recall());
    assert!(
        rel.precision() > 0.8,
        "relation precision {:.3}",
        rel.precision()
    );
    assert!(rel.recall() > 0.6, "relation recall {:.3}", rel.recall());
    assert!(ioc.f1() >= rel.f1(), "IOC extraction outperforms relations");
}

#[test]
fn demo_family_is_near_perfect() {
    // The paper's own narratives must extract essentially perfectly —
    // they are the styles the pipeline is tuned for.
    let mut rel = Prf::default();
    for report in corpus().iter().filter(|r| r.family == "demo") {
        let (_, r) = extraction_scores(report);
        rel.merge(r);
    }
    assert!(rel.f1() > 0.85, "demo relation F1 {:.3}", rel.f1());
}

#[test]
fn extraction_is_deterministic() {
    let extractor = ThreatExtractor::new();
    for report in corpus().iter().take(5) {
        let a = extractor.extract(report.text);
        let b = extractor.extract(report.text);
        assert_eq!(a.graph, b.graph, "report {}", report.id);
    }
}

#[test]
fn extraction_never_panics_on_hostile_text() {
    let extractor = ThreatExtractor::new();
    let hostile = [
        "",
        " ",
        "....",
        "((((((((",
        "/ / / / /",
        "a.b.c.d.e.f.g.h.i.j 999.999.999.999",
        "read read read read read to to to from from",
        "something something something",
        "- \n- \n- \n",
        "\u{0}\u{1}\u{2}",
        "🦀🦀🦀 read 🦀🦀🦀",
        &"/x".repeat(5_000),
        &"read /tmp/a to /tmp/b. ".repeat(300),
    ];
    for text in hostile {
        let _ = extractor.extract(text);
    }
}

#[test]
fn every_tree_in_the_corpus_is_valid() {
    let extractor = ThreatExtractor::new();
    for report in corpus() {
        let result = extractor.extract(report.text);
        for (b, trees) in result.trees.iter().enumerate() {
            for (s, tree) in trees.iter().enumerate() {
                tree.validate()
                    .unwrap_or_else(|e| panic!("report {} block {b} sentence {s}: {e}", report.id));
            }
        }
    }
}

#[test]
fn screening_only_keeps_auditable_types() {
    for report in corpus() {
        let result = ThreatExtractor::new().extract(report.text);
        let screened = threatraptor_synth::screen(&result.graph);
        for node in &screened.nodes {
            assert!(
                threatraptor_synth::screen::auditable(node.ty),
                "report {}: {} survived screening",
                report.id,
                node.ty
            );
        }
    }
}
