//! Delta/full parity for follow-mode hunts: incremental evaluation must
//! be indistinguishable from full re-execution.
//!
//! The incremental path's contract (ISSUE 9 acceptance criterion): for
//! any scenario streamed chunk-by-chunk under any seal policy, a
//! `FollowHunt` polling through the delta path delivers, **poll by
//! poll**, byte-identical rows and match counts to a forced-full oracle
//! hunt re-executing the plan from scratch each epoch — and the final
//! running results (matches, rows, columns) are byte-identical too.
//! Additionally, retained state is watermark-bounded: once the stream's
//! settled bound passes a window-bounded query's feasible range, the
//! retained partials, delivered-match witnesses, and distinct-row
//! history all drop to zero.

use proptest::prelude::*;
use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
use threatraptor_engine::ExecMode;
use threatraptor_service::{FollowHunt, PlanCache};
use threatraptor_storage::{SealPolicy, StreamingStore};
use threatraptor_tbql::parser::FIG2_TBQL;

fn hunt(tbql: &str) -> FollowHunt {
    let (plan, _) = PlanCache::new().plan(tbql).unwrap();
    FollowHunt::new(plan, ExecMode::Scheduled, 1)
}

/// Streams a scenario chunk-by-chunk, polling a delta-path hunt and a
/// forced-full oracle on identical snapshots, asserting per-poll and
/// final byte-identity.
fn assert_follow_parity(seed: u64, chunk: usize, policy: SealPolicy, tbql: &str) {
    let sc = ScenarioBuilder::new()
        .seed(seed)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(2_500)
        .build();
    let mut store = StreamingStore::new(true, policy);
    store.append_batch(&sc.log.entities, &[]);

    let mut incremental = hunt(tbql);
    let mut oracle = hunt(tbql).with_full_reexecution();
    let mut delta_polls = 0usize;
    for batch in sc.log.events.chunks(chunk) {
        store.append_batch(&[], batch);
        let snapshot = store.snapshot();
        let got = incremental.poll(&snapshot).unwrap();
        let want = oracle.poll(&snapshot).unwrap();
        // Byte-identical delivery, poll by poll.
        assert_eq!(
            got.new_matches, want.new_matches,
            "seed {seed} chunk {chunk}"
        );
        assert_eq!(got.rows, want.rows, "seed {seed} chunk {chunk}");
        assert_eq!(got.unchanged, want.unchanged);
        if got.delta.is_some() {
            delta_polls += 1;
        }
    }
    // Streaming snapshots always expose a frontier, so every poll of an
    // event-only plan runs incrementally.
    let event_only = !tbql.contains("~>");
    if event_only {
        assert_eq!(delta_polls, incremental.polls(), "delta path must engage");
    } else {
        assert_eq!(delta_polls, 0, "path plans must fall back");
    }

    // Byte-identical running results.
    let (got, want) = (incremental.result().unwrap(), oracle.result().unwrap());
    assert_eq!(got.columns, want.columns);
    assert_eq!(got.rows, want.rows);
    assert_eq!(got.matches, want.matches, "running matches must agree");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property: delta/full parity across seeds, chunk sizes, seal
    /// thresholds, and the query corpus — multi-pattern with shared
    /// variables and `before` (Fig. 2), single pattern, `distinct`
    /// projection, and a path query (which must fall back, identically).
    #[test]
    fn delta_polls_match_full_reexecution(
        seed in 0u64..4,
        chunk in prop::sample::select(vec![150usize, 500]),
        seal_every in prop::sample::select(vec![200usize, 700, usize::MAX]),
        case in 0usize..4,
    ) {
        let policy = if seal_every == usize::MAX {
            SealPolicy::manual()
        } else {
            SealPolicy::events(seal_every)
        };
        let query = [
            FIG2_TBQL,
            "proc p read file f return p, f",
            "proc p[\"%/bin/tar%\"] read file f[\"%/etc/passwd%\"] as e1\nreturn distinct p, f",
            "proc p[\"%/bin/tar%\"] ~>(1~2)[write] file f[\"%/tmp/upload.tar%\"] as pp1\nreturn p, f",
        ][case];
        assert_follow_parity(seed, chunk, policy, query);
    }
}

/// Watermark-bounded state: a query whose every pattern is windowed to
/// the first half of the stream drains once the settled bound passes the
/// window — retained partials, dedup witnesses, and distinct-row history
/// all hit zero, while the delivered results still match the oracle.
#[test]
fn retained_state_drains_after_watermark_passage() {
    let sc = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(4_000)
        .build();
    let mid = sc.log.events[sc.log.events.len() / 2].start;
    let tbql = format!(
        "proc p read file f as e1 window [0, {mid}]\n\
         proc p write file g as e2 window [0, {mid}]\n\
         return distinct p, f, g"
    );
    let mut store = StreamingStore::new(true, SealPolicy::events(150));
    store.append_batch(&sc.log.entities, &[]);

    let mut incremental = hunt(&tbql);
    let mut oracle = hunt(&tbql).with_full_reexecution();
    let mut peak_partials = 0usize;
    let mut peak_dedup = 0usize;
    for batch in sc.log.events.chunks(300) {
        store.append_batch(&[], batch);
        let snapshot = store.snapshot();
        let got = incremental.poll(&snapshot).unwrap();
        let want = oracle.poll(&snapshot).unwrap();
        assert_eq!(got.rows, want.rows, "parity under aging");
        assert_eq!(got.new_matches, want.new_matches);
        peak_partials = peak_partials.max(incremental.retained_partials());
        peak_dedup = peak_dedup.max(incremental.dedup_entries());
    }
    assert_eq!(
        incremental.result().unwrap().matches,
        oracle.result().unwrap().matches
    );

    // The hunt held real state mid-stream…
    assert!(peak_dedup > 0, "matches must have been delivered");
    // …and the watermark passing the window [0, mid] drained all of it.
    let settled = store
        .snapshot()
        .frontier()
        .expect("streaming snapshot")
        .settled_before();
    assert!(
        settled > mid,
        "scenario must advance the settled bound past the window \
         (settled {settled} ≤ mid {mid})"
    );
    assert_eq!(incremental.retained_partials(), 0, "partials must drain");
    assert_eq!(incremental.dedup_entries(), 0, "seen witnesses must drain");
    assert_eq!(incremental.known_rows(), 0, "distinct history must drain");
    // The oracle, by contrast, never ages: its dedup history persists.
    assert!(oracle.dedup_entries() > 0);
}

/// Fallback accounting: the first poll is a from-zero scan, steady-state
/// polls are not, and a snapshot discontinuity (a different store)
/// invalidates retained state and falls back exactly once.
#[test]
fn discontinuity_invalidates_and_falls_back() {
    let sc = ScenarioBuilder::new().seed(7).target_events(2_000).build();
    let q = "proc p read file f return p, f";
    let mut store = StreamingStore::new(true, SealPolicy::events(200));
    store.append_batch(&sc.log.entities, &[]);
    let mut h = hunt(q);

    let mut fresh_froms = Vec::new();
    for batch in sc.log.events.chunks(400) {
        store.append_batch(&[], batch);
        let d = h.poll(&store.snapshot()).unwrap();
        fresh_froms.push(d.delta.expect("delta path").fresh_from);
    }
    assert_eq!(fresh_froms[0], 0, "first poll scans from zero");
    assert!(
        fresh_froms[1..].iter().all(|&f| f > 0),
        "steady-state polls scan only the fresh range: {fresh_froms:?}"
    );

    // A *smaller* unrelated store: raw high-water mark and sealed
    // frontier both regress.
    let sc2 = ScenarioBuilder::new().seed(8).target_events(500).build();
    let mut other = StreamingStore::new(true, SealPolicy::events(100));
    other.append_batch(&sc2.log.entities, &[]);
    other.append_batch(&[], &sc2.log.events);
    let d = h.poll(&other.snapshot()).unwrap();
    assert_eq!(
        d.delta.expect("delta path").fresh_from,
        0,
        "discontinuity must force a from-zero rescan"
    );
}
