//! Pruning-parity property: DBM-derived feasible-range clamping is a
//! pure scan optimization. The bounds the closure attaches to a pattern
//! are consequences of the query's own constraints, so any row that can
//! witness a complete match already satisfies them — dropping the rest
//! at fetch must leave the projected rows and the full match set
//! byte-identical to an unclamped execution, on every store and mode.

use proptest::prelude::*;
use threatraptor_audit::sim::scenario::{AttackKind, ScenarioBuilder};
use threatraptor_engine::compile::{compile, CompiledQuery};
use threatraptor_engine::{ExecMode, ShardedEngine};
use threatraptor_storage::sharded::ShardedStore;
use threatraptor_tbql::analyze::analyze;
use threatraptor_tbql::parser::parse_query;

fn small_store(seed: u64, shards: usize) -> ShardedStore {
    let sc = ScenarioBuilder::new()
        .seed(seed)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(1_500)
        .build();
    ShardedStore::ingest(&sc.log, true, shards)
}

/// Compiles `tbql`, keeping the DBM bounds the closure attached.
fn compiled(tbql: &str) -> CompiledQuery {
    compile(&analyze(&parse_query(tbql).unwrap()).unwrap()).unwrap()
}

/// A window + ordering combination that gives the closure room to
/// tighten at least one pattern; the window's upper bound comes from a
/// mid-stream event timestamp so the clamp actually bites.
fn prunable_query(store: &ShardedStore, cut_quarter: usize, rel: &str, exe: &str) -> String {
    let n = store.event_count();
    let cut = store.event_at((n * cut_quarter.clamp(1, 3)) / 4).start;
    let filter = if exe.is_empty() {
        String::new()
    } else {
        format!("[\"{exe}\"]")
    };
    format!(
        "proc p{filter} read file f as e1 window [0, {cut}]\n\
         proc p write file g as e2\n\
         with e1 {rel} e2\n\
         return p, f, g"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Clamped and unclamped executions agree exactly; the clamp only
    /// changes how many rows the join ever sees.
    #[test]
    fn clamped_scans_match_unclamped(
        seed in 0u64..3,
        shards in 1usize..5,
        cut_quarter in 1usize..4,
        rel in prop::sample::select(vec!["before", "after"]),
        exe in prop::sample::select(vec!["%/bin/tar%", "%bash%", ""]),
    ) {
        let store = small_store(seed, shards);
        let engine = ShardedEngine::new(&store);
        let tbql = prunable_query(&store, cut_quarter, rel, exe);
        let clamped = compiled(&tbql);
        prop_assert!(
            clamped.patterns.iter().any(|p| p.bounds.is_some()),
            "query generator must produce tightened bounds: {}", tbql
        );
        let mut unclamped = clamped.clone();
        for p in &mut unclamped.patterns {
            p.bounds = None;
        }
        for mode in [ExecMode::Scheduled, ExecMode::Unscheduled] {
            let a = engine.execute(&clamped, mode).unwrap();
            let b = engine.execute(&unclamped, mode).unwrap();
            prop_assert_eq!(&a.columns, &b.columns);
            prop_assert_eq!(&a.rows, &b.rows, "mode {:?}: {}", mode, tbql);
            prop_assert_eq!(&a.matches, &b.matches, "mode {:?}: {}", mode, tbql);
            // The clamp is observable only in the scan accounting:
            // pruned + fetched(clamped) == fetched(unclamped), pattern
            // by pattern.
            for (id, fetched) in &a.stats.rows_fetched {
                let pruned = a
                    .stats
                    .rows_pruned
                    .iter()
                    .find(|(p, _)| p == id)
                    .map(|(_, n)| *n)
                    .unwrap_or(0);
                let unclamped_fetched = b
                    .stats
                    .rows_fetched
                    .iter()
                    .find(|(p, _)| p == id)
                    .map(|(_, n)| *n)
                    .unwrap_or(0);
                prop_assert_eq!(fetched + pruned, unclamped_fetched, "pattern {}", id);
            }
            prop_assert!(b.stats.rows_pruned.iter().all(|(_, n)| *n == 0));
        }
    }
}
