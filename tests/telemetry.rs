//! Unified-telemetry integration: one live [`HuntServer`] run must leave
//! a complete, consistent [`MetricsSnapshot`] behind.
//!
//! This is the observability layer's acceptance test: submit ad-hoc
//! hunts and stream ingest against a server with a standing query, then
//! assert that `HuntServer::metrics()` reports
//!
//! * non-zero job latency histograms (queue wait / execution /
//!   end-to-end),
//! * per-stage hunt spans for the whole lifecycle (parse → compile →
//!   scan → join → project),
//! * the job queue depth gauge (drained back to zero),
//! * follow-delivery latency percentiles for the pushed deltas,
//!
//! and that both exposition formats render the same snapshot.

use std::time::Duration;
use threatraptor::prelude::*;
use threatraptor::{JsonValue, MetricsSnapshot};
use threatraptor_service::HuntServer;
use threatraptor_tbql::parser::FIG2_TBQL;

fn driven_server() -> (HuntServer, MetricsSnapshot) {
    let scenario = ScenarioBuilder::new()
        .seed(42)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(8_000)
        .build();
    let server = HuntServer::new(ServerConfig::with_ingest(IngestConfig::with_policy(
        SealPolicy::events(1_000),
    )));
    let (alerts, initial) = server.follow(FIG2_TBQL).expect("valid TBQL");
    assert!(initial.is_empty(), "nothing ingested yet");

    // Stream ingest with ad-hoc hunts interleaved mid-stream.
    let chunks: Vec<_> = LogFeed::by_events(&scenario.raw, 800)
        .map(|c| c.expect("well-formed log"))
        .collect();
    let mut handles = Vec::new();
    for (i, chunk) in chunks.iter().enumerate() {
        server.append(chunk);
        if i % 3 == 0 {
            handles.push(server.submit(HuntJob::tbql(FIG2_TBQL)));
            handles.push(server.submit(HuntJob::tbql("proc p read file f return distinct p, f")));
        }
    }
    for handle in &handles {
        assert!(handle.wait().outcome.is_ok(), "jobs under ingest succeed");
    }
    assert!(server.wait_caught_up(Duration::from_secs(120)));
    // The attack is in the stream: at least one delta must have been
    // pushed, which is what populates the delivery histogram.
    assert!(
        alerts.try_recv().is_ok(),
        "the standing query must have delivered"
    );

    let snapshot = server.metrics();
    (server, snapshot)
}

#[test]
fn one_server_run_populates_every_lifecycle_family() {
    let (server, snapshot) = driven_server();
    let jobs = server.config().queue_capacity; // silence unused-config paths
    let _ = jobs;

    // -- job queue telemetry -------------------------------------------
    let submitted = snapshot.counter("jobs_submitted_total").unwrap();
    let completed = snapshot.counter("jobs_completed_total").unwrap();
    assert!(submitted > 0, "jobs were submitted");
    assert_eq!(submitted, completed, "every accepted job completed");
    assert_eq!(snapshot.counter("jobs_rejected_total"), Some(0));
    // Latency is labeled by outcome; every job here succeeded.
    let latency_labels: &[(&str, &str)] = &[("status", "ok")];
    for (hist, labels) in [
        ("job_queue_wait_ns", &[] as &[(&str, &str)]),
        ("job_exec_ns", &[]),
        ("job_latency_ns", latency_labels),
    ] {
        let h = snapshot.histogram(hist, labels).expect(hist);
        assert_eq!(h.count, submitted, "{hist}: one sample per job");
        assert!(h.max > 0, "{hist}: non-zero latency recorded");
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max, "{hist}");
    }
    // Queue-wait + execution can never exceed end-to-end latency in sum.
    let wait = snapshot.histogram("job_queue_wait_ns", &[]).unwrap();
    let exec = snapshot.histogram("job_exec_ns", &[]).unwrap();
    let total = snapshot
        .histogram("job_latency_ns", latency_labels)
        .unwrap();
    assert!(
        wait.sum + exec.sum <= total.sum,
        "wait ({}) + exec ({}) must bound latency ({}) from below",
        wait.sum,
        exec.sum,
        total.sum
    );
    assert_eq!(
        snapshot.gauge("job_queue_depth"),
        Some(0),
        "the queue drains once all handles resolved"
    );

    // -- per-stage hunt spans ------------------------------------------
    // parse/analyze/compile/synthesize come from the plan cache;
    // scan/propagate/join/project from job execution. Every stage the
    // lifecycle passes through must have recorded spans.
    for stage in ["parse", "analyze", "compile", "scan", "join", "project"] {
        let h = snapshot
            .histogram("hunt_stage_ns", &[("stage", stage)])
            .unwrap_or_else(|| panic!("missing hunt_stage_ns{{stage={stage}}}"));
        assert!(h.count > 0, "stage {stage} must have recorded spans");
    }
    // Compilation happened once per distinct query (the cache serves the
    // rest): exactly 2 distinct TBQL texts were planned + 1 follow query
    // (FIG2 is shared with the jobs, so 2 total).
    let compiles = snapshot
        .histogram("hunt_stage_ns", &[("stage", "compile")])
        .unwrap();
    assert_eq!(compiles.count, 2, "two distinct queries compiled once each");

    // -- serving lifecycle ---------------------------------------------
    for stage in ["ingest_append", "snapshot_build", "epoch_dispatch"] {
        let h = snapshot
            .histogram("serve_stage_ns", &[("stage", stage)])
            .unwrap_or_else(|| panic!("missing serve_stage_ns{{stage={stage}}}"));
        assert!(h.count > 0, "serve stage {stage} must have recorded spans");
    }

    // -- storage counters ----------------------------------------------
    assert!(snapshot.counter("storage_appends_total").unwrap() > 0);
    assert!(snapshot.counter("storage_raw_events_total").unwrap() >= 8_000);
    assert!(snapshot.gauge("storage_sealed_shards").unwrap() > 0);

    // -- follow-path telemetry -----------------------------------------
    assert_eq!(snapshot.gauge("follow_subscriptions"), Some(1));
    let deliveries = snapshot.counter("follow_deliveries_total").unwrap();
    assert!(deliveries > 0, "deltas were pushed");
    let delivery = snapshot.histogram("follow_delivery_ns", &[]).unwrap();
    assert_eq!(delivery.count, deliveries, "one sample per delivery");
    assert!(delivery.p50 > 0 && delivery.p50 <= delivery.p99);
    assert!(snapshot.counter("follow_polls_total").unwrap() > 0);
    assert!(snapshot.counter("follow_rows_scanned_total").unwrap() > 0);
    assert!(snapshot.counter("follow_matches_total").unwrap() > 0);

    server.shutdown();
}

#[test]
fn expositions_render_the_same_snapshot() {
    let (server, snapshot) = driven_server();
    server.shutdown();

    let prom = snapshot.to_prometheus();
    let json = JsonValue::parse(&snapshot.to_json()).expect("valid JSON");
    let samples = json.get("samples").and_then(JsonValue::as_array).unwrap();
    assert_eq!(samples.len(), snapshot.samples.len());

    // Every sample appears in both formats with the same value.
    for sample in samples {
        let name = sample.get("name").and_then(JsonValue::as_str).unwrap();
        assert!(
            prom.contains(name),
            "JSON sample {name} missing from Prometheus text"
        );
    }
    // Spot-check one concrete counter line across formats.
    let submitted = snapshot.counter("jobs_submitted_total").unwrap();
    assert!(prom.contains(&format!("jobs_submitted_total {submitted}")));
    let json_submitted = samples
        .iter()
        .find(|s| s.get("name").and_then(JsonValue::as_str) == Some("jobs_submitted_total"))
        .and_then(|s| s.get("value"))
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert_eq!(json_submitted, submitted as f64);
}
