//! Property-based integration tests: execution-strategy equivalence and
//! temporal/path semantics over randomized scenarios and queries.

use proptest::prelude::*;
use threatraptor::prelude::*;
use threatraptor_storage::AuditStore;

/// Small scenario cache-less builder (kept tiny: proptest runs many).
fn small_store(seed: u64) -> AuditStore {
    let sc = ScenarioBuilder::new()
        .seed(seed)
        .attacks(&[AttackKind::DataLeakage])
        .target_events(800)
        .build();
    AuditStore::ingest(&sc.log, true)
}

/// A strategy over simple single/two-pattern queries built from real
/// simulator vocabulary.
fn arb_query() -> impl Strategy<Value = String> {
    let exe = prop::sample::select(vec![
        "%/bin/tar%",
        "%/usr/sbin/apache2%",
        "%gcc%",
        "%/bin/bash%",
        "%curl%",
        "%nonexistent%",
    ]);
    let file = prop::sample::select(vec![
        "%/etc/passwd%",
        "%/var/www/html%",
        "%.log%",
        "%/tmp/%",
        "%nope%",
    ]);
    let op = prop::sample::select(vec!["read", "write", "read || write", "execute"]);
    (exe, file, op, any::<bool>()).prop_map(|(exe, file, op, two)| {
        if two {
            format!(
                "proc p[\"{exe}\"] {op} file f[\"{file}\"] as e1\n\
                 proc p open || close file g as e2\n\
                 with e1 before e2\n\
                 return distinct p, f, g"
            )
        } else {
            format!("proc p[\"{exe}\"] {op} file f[\"{file}\"] as e1 return distinct p, f")
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paper's optimization must be purely about speed: every
    /// strategy returns identical result rows.
    #[test]
    fn strategies_agree(seed in 0u64..4, query in arb_query()) {
        let store = small_store(seed);
        let engine = Engine::new(&store);
        let reference = engine.hunt_mode(&query, ExecMode::Scheduled).unwrap();
        for mode in [ExecMode::Unscheduled, ExecMode::RelationalOnly, ExecMode::GraphOnly] {
            let r = engine.hunt_mode(&query, mode).unwrap();
            prop_assert_eq!(&r.rows, &reference.rows, "mode {:?}", mode);
        }
    }

    /// Temporal constraints only ever shrink the match set.
    #[test]
    fn temporal_constraints_monotone(seed in 0u64..4) {
        let store = small_store(seed);
        let engine = Engine::new(&store);
        let free = "proc p[\"%/bin/tar%\"] read file f as e1\n\
                    proc p write file g as e2\n\
                    return p, f, g";
        let constrained = "proc p[\"%/bin/tar%\"] read file f as e1\n\
                           proc p write file g as e2\n\
                           with e1 before e2\n\
                           return p, f, g";
        let a = engine.hunt(free).unwrap();
        let b = engine.hunt(constrained).unwrap();
        prop_assert!(b.matches.len() <= a.matches.len());
        // And every constrained match satisfies the ordering.
        for m in &b.matches {
            prop_assert!(m.times["e1"].1 < m.times["e2"].0);
        }
    }

    /// Widening a path's hop bounds only adds matches.
    #[test]
    fn path_bounds_monotone(seed in 0u64..4) {
        let store = small_store(seed);
        let engine = Engine::new(&store);
        let narrow = "proc p[\"%/bin/tar%\"] ~>(1~1)[write] file f return distinct p, f";
        let wide = "proc p[\"%/bin/tar%\"] ~>(1~3)[write] file f return distinct p, f";
        let a = engine.hunt(narrow).unwrap();
        let b = engine.hunt(wide).unwrap();
        for row in &a.rows {
            prop_assert!(b.rows.contains(row), "wide bounds lost {row:?}");
        }
    }

    /// `distinct` never increases the row count and always deduplicates.
    #[test]
    fn distinct_semantics(seed in 0u64..4) {
        let store = small_store(seed);
        let engine = Engine::new(&store);
        let q = "proc p read file f[\"%/var/www/html%\"] as e1 return distinct p";
        let r = engine.hunt(q).unwrap();
        let mut rows = r.rows.clone();
        rows.sort();
        rows.dedup();
        prop_assert_eq!(rows.len(), r.rows.len(), "distinct rows must be unique");
    }

    /// Every matched event actually satisfies its pattern's operation.
    #[test]
    fn witnesses_satisfy_operations(seed in 0u64..4) {
        let store = small_store(seed);
        let engine = Engine::new(&store);
        let q = "proc p read || write file f[\"%.log%\"] as e1 return p, f";
        let r = engine.hunt(q).unwrap();
        for m in &r.matches {
            for &pos in &m.events["e1"] {
                let ev = store.event_at(pos);
                prop_assert!(matches!(
                    ev.op,
                    threatraptor::audit::event::Operation::Read
                        | threatraptor::audit::event::Operation::Write
                ));
            }
        }
    }
}
