//! Root package: re-exports the [`threatraptor`] facade (including the
//! service layer) so downstream code can depend on a single crate;
//! integration tests and examples live here.

pub use threatraptor::*;
