#!/usr/bin/env bash
# Repo-specific lints, run alongside clippy in CI.
#
# This script is a thin wrapper around the structured lint engine in
# crates/lint (`cargo run -p threatraptor-lint`). The engine replaced
# the old awk tripwire that lived here: the awk version only matched
# single-line `.lock().unwrap()` chains and — worse — exempted
# EVERYTHING after the first `#[cfg(test)]` line in a file, so any
# production code below a test module went unlinted. The engine scopes
# test/mutant exemptions to their actual brace spans and adds
# lock-order, hold-across-blocking, SeqCst-rationale, and sync-facade
# rules. See crates/lint/src/lib.rs for the rule catalog (L001-L005).
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run -q -p threatraptor-lint -- "$@"
