#!/usr/bin/env bash
# Repo-specific lints, run alongside clippy in CI.
#
# Lint 1: no `unwrap()`/`expect()` on Mutex/RwLock guard acquisition in
# production code. A hunt worker panicking while holding a shared lock
# must not take down every other worker through poison propagation —
# shared state in this repo recovers the guard instead:
#
#     map.lock().unwrap_or_else(PoisonError::into_inner)
#
# (sound wherever every critical section leaves the value valid; see the
# plan-cache module docs). Everything after the first `#[cfg(test)]`
# line in a file is exempt: tests may assert on poisoning itself.
#
# The check is textual (single-line `.lock().unwrap()` chains); it is a
# tripwire, not a proof. Split chains slip through — reviewers still
# look for them.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r file; do
    hits=$(awk -v f="$file" '
        /^[[:space:]]*#\[cfg\(test\)\]/ { exit }
        /\.(lock|read|write)\(\)[[:space:]]*\.[[:space:]]*(unwrap|expect)\(/ {
            print f ":" FNR ": " $0
        }
    ' "$file")
    if [ -n "$hits" ]; then
        printf '%s\n' "$hits"
        fail=1
    fi
done < <(find crates -path '*/src/*' -name '*.rs'; find examples -name '*.rs' 2>/dev/null)

if [ "$fail" -ne 0 ]; then
    echo "error: lock guards must recover poison in production code" >&2
    echo "       (use .unwrap_or_else(PoisonError::into_inner))" >&2
    exit 1
fi
echo "tools/lint.sh: ok"
